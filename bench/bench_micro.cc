// Google-benchmark microbenchmarks for the substrates: crypto primitives,
// RA-TLS handshakes, model (de)serialization, and the end-to-end SeMIRT hot
// path. These are the building blocks behind every figure; regressions here
// shift the calibrated curves.
//
// Machine-readable output for the BENCH_*.json trajectory:
//   bench_micro --benchmark_format=json --benchmark_out=bench_micro.json
// Throughput appears as bytes_per_second (GCM/SHA, i.e. GB/s after scaling)
// and the FLOPS counter (Conv2d/Dense, GFLOP/s after scaling). The *Naive
// variants run the seed scalar kernels for an in-binary speedup baseline.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench/bench_common.h"
#include "crypto/gcm.h"
#include "crypto/sha256.h"
#include "crypto/x25519.h"
#include "inference/compiled_model.h"
#include "inference/gemm.h"
#include "inference/ops.h"
#include "model/format.h"
#include "ratls/handshake.h"

namespace sesemi::bench {
namespace {

// SHA-256 rides the same hw-vs-portable dispatch as GCM: the default series
// is labelled with the resolved backend (SHA-NI where the CPU has it), and
// the *Portable twin pins the FIPS 180-4 scalar rounds.
void BM_Sha256(benchmark::State& state) {
  Bytes data(static_cast<size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::Hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  state.SetLabel(crypto::Sha256().hardware() ? "hw" : "portable");
}
BENCHMARK(BM_Sha256)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_Sha256Portable(benchmark::State& state) {
  Bytes data(static_cast<size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    crypto::Sha256 h(crypto::CryptoBackend::kPortable);
    h.Update(data);
    benchmark::DoNotOptimize(h.Finish());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256Portable)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

// The hw-vs-portable series: the default benchmarks ride the process-wide
// backend (AES-NI + PCLMUL where the CPU has them, labelled), and the
// *Portable twins pin the T-table/Shoup fallback, so one run shows the
// hardware dispatch speedup in-binary — the same pattern as the *Naive
// inference kernels below.
void BM_AesGcmEncrypt(benchmark::State& state) {
  Bytes key(16, 1), nonce(12, 2);
  Bytes data(static_cast<size_t>(state.range(0)), 0xcd);
  auto gcm = crypto::AesGcm::Create(key);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gcm->Encrypt(nonce, {}, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  state.SetLabel(gcm->hardware() ? "hw" : "portable");
}
BENCHMARK(BM_AesGcmEncrypt)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_AesGcmEncryptPortable(benchmark::State& state) {
  Bytes key(16, 1), nonce(12, 2);
  Bytes data(static_cast<size_t>(state.range(0)), 0xcd);
  auto gcm = crypto::AesGcm::Create(key, crypto::CryptoBackend::kPortable);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gcm->Encrypt(nonce, {}, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesGcmEncryptPortable)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_AesGcmDecrypt(benchmark::State& state) {
  Bytes key(16, 1), nonce(12, 2);
  Bytes data(static_cast<size_t>(state.range(0)), 0xcd);
  auto gcm = crypto::AesGcm::Create(key);
  Bytes sealed = std::move(*gcm->Encrypt(nonce, {}, data));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gcm->Decrypt(nonce, {}, sealed));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  state.SetLabel(gcm->hardware() ? "hw" : "portable");
}
BENCHMARK(BM_AesGcmDecrypt)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_AesGcmDecryptPortable(benchmark::State& state) {
  Bytes key(16, 1), nonce(12, 2);
  Bytes data(static_cast<size_t>(state.range(0)), 0xcd);
  auto gcm = crypto::AesGcm::Create(key, crypto::CryptoBackend::kPortable);
  Bytes sealed = std::move(*gcm->Encrypt(nonce, {}, data));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gcm->Decrypt(nonce, {}, sealed));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesGcmDecryptPortable)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

// GcmSeal/GcmOpen are the exact calls on the SeMIRT request path (key
// schedule + GHASH table build per call included), reported as end-to-end
// payload throughput.
void BM_GcmSeal(benchmark::State& state) {
  Bytes key(16, 7);
  Bytes aad = ToBytes("sesemi-request:mbnet");
  Bytes data(static_cast<size_t>(state.range(0)), 0x5c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::GcmSeal(key, aad, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GcmSeal)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

// Portable twin of BM_GcmSeal (per-message cipher setup included, like the
// keyed helper): the request-path end-to-end cost of the fallback.
void BM_GcmSealPortable(benchmark::State& state) {
  Bytes key(16, 7);
  Bytes aad = ToBytes("sesemi-request:mbnet");
  Bytes data(static_cast<size_t>(state.range(0)), 0x5c);
  for (auto _ : state) {
    auto gcm = crypto::AesGcm::Create(key, crypto::CryptoBackend::kPortable);
    benchmark::DoNotOptimize(crypto::GcmSealPartsWith(*gcm, aad, {}, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GcmSealPortable)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

// VAES twin of BM_GcmSeal: pins the AVX-512 4×128-lane keystream +
// VPCLMULQDQ 8-block GHASH tier (per-message cipher setup included, like the
// other twins), so one run shows what the wide tier buys over single-block
// AES-NI. Skips with a note where the CPU lacks VAES/AVX-512.
void BM_GcmSealVaes(benchmark::State& state) {
  if (!crypto::VaesCryptoAvailable()) {
    // This libbenchmark predates SkipWithMessage; an empty run with a label
    // keeps the series present (CI asserts on the name) without faking a
    // throughput number.
    for (auto _ : state) {
    }
    state.SetLabel("skipped: VAES/AVX-512 unavailable");
    return;
  }
  Bytes key(16, 7);
  Bytes aad = ToBytes("sesemi-request:mbnet");
  Bytes data(static_cast<size_t>(state.range(0)), 0x5c);
  for (auto _ : state) {
    auto gcm = crypto::AesGcm::Create(key, crypto::CryptoBackend::kHardwareVaes);
    benchmark::DoNotOptimize(crypto::GcmSealPartsWith(*gcm, aad, {}, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GcmSealVaes)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_GcmOpen(benchmark::State& state) {
  Bytes key(16, 7);
  Bytes aad = ToBytes("sesemi-request:mbnet");
  Bytes data(static_cast<size_t>(state.range(0)), 0x5c);
  Bytes sealed = std::move(*crypto::GcmSeal(key, aad, data));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::GcmOpen(key, aad, sealed));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GcmOpen)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_GcmOpenPortable(benchmark::State& state) {
  Bytes key(16, 7);
  Bytes aad = ToBytes("sesemi-request:mbnet");
  Bytes data(static_cast<size_t>(state.range(0)), 0x5c);
  Bytes sealed = std::move(*crypto::GcmSeal(key, aad, data));
  for (auto _ : state) {
    auto gcm = crypto::AesGcm::Create(key, crypto::CryptoBackend::kPortable);
    benchmark::DoNotOptimize(crypto::GcmOpenPartsWith(*gcm, aad, {}, sealed));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GcmOpenPortable)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

// ------------------------------------------------ inference kernels
// FLOPS counter = multiply-adds * 2 per second; naive twins measure the
// seed scalar kernels so the GEMM speedup is visible in one run.

std::vector<float> BenchVec(size_t n) {
  std::vector<float> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<float>((i * 2654435761u % 1024) / 512.0) - 1.0f;
  }
  return v;
}

struct ConvSetup {
  model::TensorShape shape;
  int kernel = 3, stride = 1, out_c;
  std::vector<float> in, weights, out;
  double flops;

  explicit ConvSetup(int hw, int c, int oc) : shape{hw, hw, c}, out_c(oc) {
    in = BenchVec(shape.elements());
    weights = BenchVec(static_cast<size_t>(kernel) * kernel * c * oc + oc);
    out.resize(static_cast<size_t>(hw) * hw * oc);
    flops = 2.0 * hw * hw * oc * kernel * kernel * c;
  }
};

void BM_Conv2d(benchmark::State& state) {
  ConvSetup s(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)),
              static_cast<int>(state.range(2)));
  std::vector<float> scratch(
      inference::ops::Conv2dScratchElements(s.shape, s.kernel, s.stride));
  for (auto _ : state) {
    inference::ops::Conv2d(s.in.data(), s.shape, s.weights.data(), s.kernel,
                           s.stride, s.out_c, s.out.data(), scratch.data());
    benchmark::DoNotOptimize(s.out.data());
  }
  state.counters["FLOPS"] = benchmark::Counter(
      s.flops * static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Conv2d)->Args({32, 64, 64})->Args({16, 32, 64})->Args({64, 16, 16});

void BM_Conv2dNaive(benchmark::State& state) {
  ConvSetup s(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)),
              static_cast<int>(state.range(2)));
  for (auto _ : state) {
    inference::ops::Conv2dNaive(s.in.data(), s.shape, s.weights.data(), s.kernel,
                                s.stride, s.out_c, s.out.data());
    benchmark::DoNotOptimize(s.out.data());
  }
  state.counters["FLOPS"] = benchmark::Counter(
      s.flops * static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Conv2dNaive)->Args({32, 64, 64})->Args({16, 32, 64})->Args({64, 16, 16});

// Prepacked twin of BM_Conv2d: the B panels are laid out once (MODEL_LOAD
// semantics, outside the timed loop), so the delta against BM_Conv2d is
// exactly what compile-once weight packing buys the hot path.
void BM_Conv2dPrepacked(benchmark::State& state) {
  ConvSetup s(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)),
              static_cast<int>(state.range(2)));
  const int k = s.kernel * s.kernel * s.shape.c;
  std::vector<float> packed(inference::gemm::PackedBElements(k, s.out_c));
  inference::gemm::PackB(s.weights.data(), k, s.out_c, packed.data());
  const float* bias = s.weights.data() + static_cast<size_t>(k) * s.out_c;
  std::vector<float> scratch(
      inference::ops::Conv2dScratchElements(s.shape, s.kernel, s.stride));
  for (auto _ : state) {
    inference::gemm::Conv2dGemmPrepacked(s.in.data(), s.shape, packed.data(),
                                         bias, s.kernel, s.stride, s.out_c,
                                         s.out.data(), scratch.data());
    benchmark::DoNotOptimize(s.out.data());
  }
  state.counters["FLOPS"] = benchmark::Counter(
      s.flops * static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Conv2dPrepacked)->Args({32, 64, 64})->Args({16, 32, 64})->Args({64, 16, 16});

struct DepthwiseSetup {
  model::TensorShape shape;
  static constexpr int kernel = 3;
  static constexpr int stride = 1;
  std::vector<float> in, weights, out;
  double flops = 0;

  explicit DepthwiseSetup(int hw, int c) : shape{hw, hw, c} {
    in = BenchVec(shape.elements());
    weights = BenchVec(static_cast<size_t>(kernel) * kernel * c + c);
    out.resize(shape.elements());
    flops = 2.0 * hw * hw * kernel * kernel * c;
  }
};

void BM_DepthwiseConv2d(benchmark::State& state) {
  DepthwiseSetup s(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  for (auto _ : state) {
    inference::ops::DepthwiseConv2d(s.in.data(), s.shape, s.weights.data(),
                                    s.kernel, s.stride, s.out.data());
    benchmark::DoNotOptimize(s.out.data());
  }
  state.counters["FLOPS"] = benchmark::Counter(
      s.flops * static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DepthwiseConv2d)->Args({64, 64})->Args({32, 256});

void BM_DepthwiseConv2dNaive(benchmark::State& state) {
  DepthwiseSetup s(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  for (auto _ : state) {
    inference::ops::DepthwiseConv2dNaive(s.in.data(), s.shape, s.weights.data(),
                                         s.kernel, s.stride, s.out.data());
    benchmark::DoNotOptimize(s.out.data());
  }
  state.counters["FLOPS"] = benchmark::Counter(
      s.flops * static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DepthwiseConv2dNaive)->Args({64, 64})->Args({32, 256});

void BM_Dense(benchmark::State& state) {
  const size_t in_features = static_cast<size_t>(state.range(0));
  const int units = static_cast<int>(state.range(1));
  std::vector<float> in = BenchVec(in_features);
  std::vector<float> weights = BenchVec(in_features * units + units);
  std::vector<float> out(units);
  for (auto _ : state) {
    inference::ops::Dense(in.data(), in_features, weights.data(), units, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["FLOPS"] = benchmark::Counter(
      2.0 * static_cast<double>(in_features) * units * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Dense)->Args({1024, 1024})->Args({4096, 256});

void BM_DenseNaive(benchmark::State& state) {
  const size_t in_features = static_cast<size_t>(state.range(0));
  const int units = static_cast<int>(state.range(1));
  std::vector<float> in = BenchVec(in_features);
  std::vector<float> weights = BenchVec(in_features * units + units);
  std::vector<float> out(units);
  for (auto _ : state) {
    inference::ops::DenseNaive(in.data(), in_features, weights.data(), units,
                               out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["FLOPS"] = benchmark::Counter(
      2.0 * static_cast<double>(in_features) * units * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DenseNaive)->Args({1024, 1024})->Args({4096, 256});

// Prepacked twin of BM_Dense: the M==1 GEMV over panel-major B (one
// contiguous forward stream per panel, accumulators live in registers).
void BM_DensePrepacked(benchmark::State& state) {
  const size_t in_features = static_cast<size_t>(state.range(0));
  const int units = static_cast<int>(state.range(1));
  std::vector<float> in = BenchVec(in_features);
  std::vector<float> weights = BenchVec(in_features * units + units);
  std::vector<float> packed(
      inference::gemm::PackedBElements(static_cast<int>(in_features), units));
  inference::gemm::PackB(weights.data(), static_cast<int>(in_features), units,
                         packed.data());
  const float* bias = weights.data() + in_features * static_cast<size_t>(units);
  std::vector<float> out(units);
  for (auto _ : state) {
    inference::gemm::GemmPrepacked(in.data(), packed.data(), bias, out.data(), 1,
                                   units, static_cast<int>(in_features));
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["FLOPS"] = benchmark::Counter(
      2.0 * static_cast<double>(in_features) * units * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DensePrepacked)->Args({1024, 1024})->Args({4096, 256});

// Int8 twin of BM_DensePrepacked: weights quantized and packed once
// (MODEL_LOAD semantics), the timed loop is the per-request hot path —
// dynamic activation quantization + the u7×s8 GEMV with the fp32 dequant
// epilogue. The FLOPS counter uses the same multiply-add count as the fp32
// twins, so the series divide directly into a speedup. arg2 pins the
// instruction tier (0 = auto, 1 = portable, 2 = AVX2, 3 = AVX-512 VNNI);
// pinned tiers the CPU lacks emit an empty labelled run, like BM_GcmSealVaes.
void BM_DenseInt8(benchmark::State& state) {
  const int in_features = static_cast<int>(state.range(0));
  const int units = static_cast<int>(state.range(1));
  const auto isa = static_cast<inference::gemm::GemmIsa>(state.range(2));
  if (!inference::gemm::GemmIsaAvailable(isa)) {
    for (auto _ : state) {
    }
    state.SetLabel(std::string("skipped: ") + inference::gemm::ToString(isa) +
                   " unavailable");
    return;
  }
  std::vector<float> in = BenchVec(static_cast<size_t>(in_features));
  std::vector<float> weights =
      BenchVec(static_cast<size_t>(in_features) * units + units);
  const float* bias =
      weights.data() + static_cast<size_t>(in_features) * units;

  // MODEL_LOAD: per-column symmetric int8 quantization + panel packing.
  std::vector<int8_t> wq(static_cast<size_t>(in_features) * units);
  std::vector<float> w_scales(units);
  for (int j = 0; j < units; ++j) {
    float absmax = 0.0f;
    for (int kk = 0; kk < in_features; ++kk) {
      absmax = std::max(absmax,
                        std::abs(weights[static_cast<size_t>(kk) * units + j]));
    }
    w_scales[j] = absmax > 0.0f ? absmax / 127.0f : 1.0f;
    for (int kk = 0; kk < in_features; ++kk) {
      const size_t at = static_cast<size_t>(kk) * units + j;
      wq[at] = static_cast<int8_t>(
          std::lrintf(weights[at] / w_scales[j]));
    }
  }
  std::vector<int8_t> packed(
      inference::gemm::PackedBInt8Bytes(in_features, units));
  inference::gemm::PackBInt8(wq.data(), in_features, units, packed.data());
  std::vector<int32_t> colsums(units);
  inference::gemm::Int8ColumnSums(wq.data(), in_features, units, colsums.data());

  const int k4 = inference::gemm::RoundUpK4(in_features);
  std::vector<uint8_t> in_q(static_cast<size_t>(k4), 0);
  std::vector<float> out(units);
  for (auto _ : state) {
    const inference::gemm::ActQuant aq = inference::gemm::QuantizeActivations(
        in.data(), static_cast<size_t>(in_features), in_q.data());
    const float a_scale = aq.scale;
    const int32_t a_zp = aq.zero_point;
    inference::gemm::GemmInt8Prepacked(in_q.data(), k4, &a_scale, &a_zp,
                                       packed.data(), w_scales.data(),
                                       colsums.data(), bias, out.data(), 1,
                                       units, in_features, isa);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel(inference::gemm::ToString(
      isa == inference::gemm::GemmIsa::kAuto ? inference::gemm::ActiveGemmIsa()
                                             : isa));
  state.counters["FLOPS"] = benchmark::Counter(
      2.0 * static_cast<double>(in_features) * units * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DenseInt8)
    ->Args({1024, 1024, 0})
    ->Args({4096, 256, 0})
    ->Args({1024, 1024, 2})
    ->Args({4096, 256, 2})
    ->Args({1024, 1024, 3})
    ->Args({4096, 256, 3});

// Int8 twin of BM_Conv2dPrepacked: per-output-channel quantized weights in
// int8 panels, dynamic input quantization + u8 im2col + int8 GEMM per
// iteration — exactly the compiled quantized conv path.
void BM_Conv2dInt8(benchmark::State& state) {
  ConvSetup s(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)),
              static_cast<int>(state.range(2)));
  const int k = s.kernel * s.kernel * s.shape.c;
  std::vector<int8_t> wq(static_cast<size_t>(k) * s.out_c);
  std::vector<float> w_scales(s.out_c);
  for (int j = 0; j < s.out_c; ++j) {
    float absmax = 0.0f;
    for (int kk = 0; kk < k; ++kk) {
      absmax = std::max(
          absmax, std::abs(s.weights[static_cast<size_t>(kk) * s.out_c + j]));
    }
    w_scales[j] = absmax > 0.0f ? absmax / 127.0f : 1.0f;
    for (int kk = 0; kk < k; ++kk) {
      const size_t at = static_cast<size_t>(kk) * s.out_c + j;
      wq[at] = static_cast<int8_t>(std::lrintf(s.weights[at] / w_scales[j]));
    }
  }
  std::vector<int8_t> packed(inference::gemm::PackedBInt8Bytes(k, s.out_c));
  inference::gemm::PackBInt8(wq.data(), k, s.out_c, packed.data());
  std::vector<int32_t> colsums(s.out_c);
  inference::gemm::Int8ColumnSums(wq.data(), k, s.out_c, colsums.data());
  const float* bias = s.weights.data() + static_cast<size_t>(k) * s.out_c;

  const size_t in_elems = s.shape.elements();
  std::vector<uint8_t> in_q((in_elems + 3) & ~size_t{3}, 0);
  std::vector<uint8_t> scratch(
      inference::gemm::Conv2dScratchBytesInt8(s.shape, s.kernel, s.stride));
  for (auto _ : state) {
    const inference::gemm::ActQuant aq = inference::gemm::QuantizeActivations(
        s.in.data(), in_elems, in_q.data());
    inference::gemm::Conv2dGemmInt8Prepacked(
        in_q.data(), aq, s.shape, packed.data(), w_scales.data(),
        colsums.data(), bias, s.kernel, s.stride, s.out_c, s.out.data(),
        scratch.empty() ? nullptr : scratch.data());
    benchmark::DoNotOptimize(s.out.data());
  }
  state.SetLabel(inference::gemm::ToString(inference::gemm::ActiveGemmIsa()));
  state.counters["FLOPS"] = benchmark::Counter(
      s.flops * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Conv2dInt8)->Args({32, 64, 64})->Args({16, 32, 64})->Args({64, 16, 16});

void BM_X25519SharedSecret(benchmark::State& state) {
  auto a = crypto::GenerateX25519KeyPair();
  auto b = crypto::GenerateX25519KeyPair();
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::X25519SharedSecret(a.private_key, b.public_key));
  }
}
BENCHMARK(BM_X25519SharedSecret);

void BM_RatlsMutualHandshake(benchmark::State& state) {
  sgx::AttestationAuthority authority;
  sgx::SgxPlatform platform(sgx::SgxGeneration::kSgx2, &authority);
  sgx::EnclaveImage server_image("s", {{"c", ToBytes("ks")}}, {});
  sgx::EnclaveImage client_image("c", {{"c", ToBytes("rt")}}, {});
  auto server = std::move(*platform.CreateEnclave(server_image));
  auto client = std::move(*platform.CreateEnclave(client_image));
  for (auto _ : state) {
    ratls::RatlsInitiator initiator(&authority, client.get());
    auto hello = initiator.Start();
    ratls::RatlsAcceptor acceptor(server.get());
    auto accepted = acceptor.Accept(*hello, true);
    benchmark::DoNotOptimize(initiator.Finish(accepted->hello, server->mrenclave()));
  }
}
BENCHMARK(BM_RatlsMutualHandshake);

void BM_ModelSerializeParse(benchmark::State& state) {
  model::ZooSpec spec;
  spec.arch = model::Architecture::kDsNet;
  spec.scale = 0.01;
  spec.input_hw = 16;
  auto graph = model::BuildModel(spec);
  Bytes wire = model::SerializeModel(*graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::ParseModel(wire));
  }
  state.SetBytesProcessed(state.iterations() * wire.size());
}
BENCHMARK(BM_ModelSerializeParse);

// MODEL_LOAD-time compile latency: what the compile-once split moved off the
// request path. arg0 selects packing (1 = µTVM packed panels, 0 = µTFLM
// plan-only); the packed_MB counter is the resident cost of the artifact.
void BM_ModelCompile(benchmark::State& state) {
  model::ZooSpec spec;
  spec.arch = model::Architecture::kHybNet;
  spec.scale = 0.02;
  spec.input_hw = 16;
  auto graph = model::BuildModel(spec);
  inference::CompiledModel::Options options;
  options.pack_weights = state.range(0) != 0;
  uint64_t packed_bytes = 0;
  for (auto _ : state) {
    // The graph copy stands in for MODEL_LOAD's ownership handoff but is a
    // megabyte-scale memcpy — keep it (and the artifact teardown) out of the
    // timed region so the series measures Compile itself.
    state.PauseTiming();
    model::ModelGraph copy = *graph;
    state.ResumeTiming();
    auto compiled = inference::CompiledModel::Compile(std::move(copy), options);
    benchmark::DoNotOptimize(compiled);
    state.PauseTiming();
    packed_bytes = compiled->packed_weight_bytes();
    { auto dropped = std::move(compiled); }  // teardown outside the timer
    state.ResumeTiming();
  }
  state.SetLabel(options.pack_weights ? "packed" : "plan-only");
  state.counters["packed_MB"] =
      static_cast<double>(packed_bytes) / (1024.0 * 1024.0);
}
BENCHMARK(BM_ModelCompile)->Arg(0)->Arg(1);

// Batched execution over the compiled pipeline: Dense rides one M=batch
// GEMM, conv/pool layers fan the batch over the pool. items/s is samples/s.
void BM_CompiledExecuteBatch(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  model::ZooSpec spec;
  spec.arch = model::Architecture::kHybNet;
  spec.scale = 0.02;
  spec.input_hw = 16;
  auto graph = model::BuildModel(spec);
  auto compiled = inference::CompiledModel::Compile(*graph);
  std::vector<Bytes> inputs;
  for (int b = 0; b < batch; ++b) {
    inputs.push_back(model::GenerateRandomInput(*graph, 100 + b));
  }
  std::vector<ByteSpan> spans(inputs.begin(), inputs.end());
  std::vector<float> arena(compiled->batch_arena_elements(batch));
  std::vector<Bytes> outputs;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        compiled->ExecuteBatch(spans, arena.data(), &outputs));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_CompiledExecuteBatch)->Arg(1)->Arg(4)->Arg(8);

void BM_InferenceExecute(benchmark::State& state) {
  auto kind = state.range(0) == 0 ? inference::FrameworkKind::kTflm
                                  : inference::FrameworkKind::kTvm;
  model::ZooSpec spec;
  spec.arch = model::Architecture::kMbNet;
  spec.scale = 0.01;
  spec.input_hw = 16;
  auto graph = model::BuildModel(spec);
  auto framework = inference::CreateFramework(kind);
  auto loaded = framework->WrapModel(*graph);
  auto runtime = std::move(*framework->CreateRuntime(*loaded));
  Bytes input = model::GenerateRandomInput(*graph, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime->Execute(input));
  }
  state.SetLabel(inference::ToString(kind));
}
BENCHMARK(BM_InferenceExecute)->Arg(0)->Arg(1);

void BM_SemirtHotPath(benchmark::State& state) {
  LiveRig rig(0.01);
  rig.DeployModel(model::Architecture::kMbNet);
  semirt::SemirtOptions options;
  rig.Authorize(model::Architecture::kMbNet, options);
  auto instance = rig.MakeInstance(options);
  // Warm to hot.
  (void)rig.TimedRequest(instance.get(), model::Architecture::kMbNet, options);
  uint64_t seed = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rig.TimedRequest(instance.get(), model::Architecture::kMbNet, options, seed++));
  }
}
BENCHMARK(BM_SemirtHotPath);

}  // namespace
}  // namespace sesemi::bench

BENCHMARK_MAIN();
