// Google-benchmark microbenchmarks for the substrates: crypto primitives,
// RA-TLS handshakes, model (de)serialization, and the end-to-end SeMIRT hot
// path. These are the building blocks behind every figure; regressions here
// shift the calibrated curves.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "crypto/gcm.h"
#include "crypto/sha256.h"
#include "crypto/x25519.h"
#include "model/format.h"
#include "ratls/handshake.h"

namespace sesemi::bench {
namespace {

void BM_Sha256(benchmark::State& state) {
  Bytes data(static_cast<size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::Hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_AesGcmEncrypt(benchmark::State& state) {
  Bytes key(16, 1), nonce(12, 2);
  Bytes data(static_cast<size_t>(state.range(0)), 0xcd);
  auto gcm = crypto::AesGcm::Create(key);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gcm->Encrypt(nonce, {}, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesGcmEncrypt)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_X25519SharedSecret(benchmark::State& state) {
  auto a = crypto::GenerateX25519KeyPair();
  auto b = crypto::GenerateX25519KeyPair();
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::X25519SharedSecret(a.private_key, b.public_key));
  }
}
BENCHMARK(BM_X25519SharedSecret);

void BM_RatlsMutualHandshake(benchmark::State& state) {
  sgx::AttestationAuthority authority;
  sgx::SgxPlatform platform(sgx::SgxGeneration::kSgx2, &authority);
  sgx::EnclaveImage server_image("s", {{"c", ToBytes("ks")}}, {});
  sgx::EnclaveImage client_image("c", {{"c", ToBytes("rt")}}, {});
  auto server = std::move(*platform.CreateEnclave(server_image));
  auto client = std::move(*platform.CreateEnclave(client_image));
  for (auto _ : state) {
    ratls::RatlsInitiator initiator(&authority, client.get());
    auto hello = initiator.Start();
    ratls::RatlsAcceptor acceptor(server.get());
    auto accepted = acceptor.Accept(*hello, true);
    benchmark::DoNotOptimize(initiator.Finish(accepted->hello, server->mrenclave()));
  }
}
BENCHMARK(BM_RatlsMutualHandshake);

void BM_ModelSerializeParse(benchmark::State& state) {
  model::ZooSpec spec;
  spec.arch = model::Architecture::kDsNet;
  spec.scale = 0.01;
  spec.input_hw = 16;
  auto graph = model::BuildModel(spec);
  Bytes wire = model::SerializeModel(*graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::ParseModel(wire));
  }
  state.SetBytesProcessed(state.iterations() * wire.size());
}
BENCHMARK(BM_ModelSerializeParse);

void BM_InferenceExecute(benchmark::State& state) {
  auto kind = state.range(0) == 0 ? inference::FrameworkKind::kTflm
                                  : inference::FrameworkKind::kTvm;
  model::ZooSpec spec;
  spec.arch = model::Architecture::kMbNet;
  spec.scale = 0.01;
  spec.input_hw = 16;
  auto graph = model::BuildModel(spec);
  auto framework = inference::CreateFramework(kind);
  auto loaded = framework->WrapModel(*graph);
  auto runtime = std::move(*framework->CreateRuntime(*loaded));
  Bytes input = model::GenerateRandomInput(*graph, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime->Execute(input));
  }
  state.SetLabel(inference::ToString(kind));
}
BENCHMARK(BM_InferenceExecute)->Arg(0)->Arg(1);

void BM_SemirtHotPath(benchmark::State& state) {
  LiveRig rig(0.01);
  rig.DeployModel(model::Architecture::kMbNet);
  semirt::SemirtOptions options;
  rig.Authorize(model::Architecture::kMbNet, options);
  auto instance = rig.MakeInstance(options);
  // Warm to hot.
  (void)rig.TimedRequest(instance.get(), model::Architecture::kMbNet, options);
  uint64_t seed = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rig.TimedRequest(instance.get(), model::Architecture::kMbNet, options, seed++));
  }
}
BENCHMARK(BM_SemirtHotPath);

}  // namespace
}  // namespace sesemi::bench

BENCHMARK_MAIN();
