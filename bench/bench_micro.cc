// Google-benchmark microbenchmarks for the substrates: crypto primitives,
// RA-TLS handshakes, model (de)serialization, and the end-to-end SeMIRT hot
// path. These are the building blocks behind every figure; regressions here
// shift the calibrated curves.
//
// Machine-readable output for the BENCH_*.json trajectory:
//   bench_micro --benchmark_format=json --benchmark_out=bench_micro.json
// Throughput appears as bytes_per_second (GCM/SHA, i.e. GB/s after scaling)
// and the FLOPS counter (Conv2d/Dense, GFLOP/s after scaling). The *Naive
// variants run the seed scalar kernels for an in-binary speedup baseline.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "crypto/gcm.h"
#include "crypto/sha256.h"
#include "crypto/x25519.h"
#include "inference/ops.h"
#include "model/format.h"
#include "ratls/handshake.h"

namespace sesemi::bench {
namespace {

void BM_Sha256(benchmark::State& state) {
  Bytes data(static_cast<size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::Hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

// The hw-vs-portable series: the default benchmarks ride the process-wide
// backend (AES-NI + PCLMUL where the CPU has them, labelled), and the
// *Portable twins pin the T-table/Shoup fallback, so one run shows the
// hardware dispatch speedup in-binary — the same pattern as the *Naive
// inference kernels below.
void BM_AesGcmEncrypt(benchmark::State& state) {
  Bytes key(16, 1), nonce(12, 2);
  Bytes data(static_cast<size_t>(state.range(0)), 0xcd);
  auto gcm = crypto::AesGcm::Create(key);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gcm->Encrypt(nonce, {}, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  state.SetLabel(gcm->hardware() ? "hw" : "portable");
}
BENCHMARK(BM_AesGcmEncrypt)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_AesGcmEncryptPortable(benchmark::State& state) {
  Bytes key(16, 1), nonce(12, 2);
  Bytes data(static_cast<size_t>(state.range(0)), 0xcd);
  auto gcm = crypto::AesGcm::Create(key, crypto::CryptoBackend::kPortable);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gcm->Encrypt(nonce, {}, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesGcmEncryptPortable)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_AesGcmDecrypt(benchmark::State& state) {
  Bytes key(16, 1), nonce(12, 2);
  Bytes data(static_cast<size_t>(state.range(0)), 0xcd);
  auto gcm = crypto::AesGcm::Create(key);
  Bytes sealed = std::move(*gcm->Encrypt(nonce, {}, data));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gcm->Decrypt(nonce, {}, sealed));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  state.SetLabel(gcm->hardware() ? "hw" : "portable");
}
BENCHMARK(BM_AesGcmDecrypt)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_AesGcmDecryptPortable(benchmark::State& state) {
  Bytes key(16, 1), nonce(12, 2);
  Bytes data(static_cast<size_t>(state.range(0)), 0xcd);
  auto gcm = crypto::AesGcm::Create(key, crypto::CryptoBackend::kPortable);
  Bytes sealed = std::move(*gcm->Encrypt(nonce, {}, data));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gcm->Decrypt(nonce, {}, sealed));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesGcmDecryptPortable)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

// GcmSeal/GcmOpen are the exact calls on the SeMIRT request path (key
// schedule + GHASH table build per call included), reported as end-to-end
// payload throughput.
void BM_GcmSeal(benchmark::State& state) {
  Bytes key(16, 7);
  Bytes aad = ToBytes("sesemi-request:mbnet");
  Bytes data(static_cast<size_t>(state.range(0)), 0x5c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::GcmSeal(key, aad, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GcmSeal)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

// Portable twin of BM_GcmSeal (per-message cipher setup included, like the
// keyed helper): the request-path end-to-end cost of the fallback.
void BM_GcmSealPortable(benchmark::State& state) {
  Bytes key(16, 7);
  Bytes aad = ToBytes("sesemi-request:mbnet");
  Bytes data(static_cast<size_t>(state.range(0)), 0x5c);
  for (auto _ : state) {
    auto gcm = crypto::AesGcm::Create(key, crypto::CryptoBackend::kPortable);
    benchmark::DoNotOptimize(crypto::GcmSealPartsWith(*gcm, aad, {}, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GcmSealPortable)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_GcmOpen(benchmark::State& state) {
  Bytes key(16, 7);
  Bytes aad = ToBytes("sesemi-request:mbnet");
  Bytes data(static_cast<size_t>(state.range(0)), 0x5c);
  Bytes sealed = std::move(*crypto::GcmSeal(key, aad, data));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::GcmOpen(key, aad, sealed));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GcmOpen)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_GcmOpenPortable(benchmark::State& state) {
  Bytes key(16, 7);
  Bytes aad = ToBytes("sesemi-request:mbnet");
  Bytes data(static_cast<size_t>(state.range(0)), 0x5c);
  Bytes sealed = std::move(*crypto::GcmSeal(key, aad, data));
  for (auto _ : state) {
    auto gcm = crypto::AesGcm::Create(key, crypto::CryptoBackend::kPortable);
    benchmark::DoNotOptimize(crypto::GcmOpenPartsWith(*gcm, aad, {}, sealed));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GcmOpenPortable)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

// ------------------------------------------------ inference kernels
// FLOPS counter = multiply-adds * 2 per second; naive twins measure the
// seed scalar kernels so the GEMM speedup is visible in one run.

std::vector<float> BenchVec(size_t n) {
  std::vector<float> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<float>((i * 2654435761u % 1024) / 512.0) - 1.0f;
  }
  return v;
}

struct ConvSetup {
  model::TensorShape shape;
  int kernel = 3, stride = 1, out_c;
  std::vector<float> in, weights, out;
  double flops;

  explicit ConvSetup(int hw, int c, int oc) : shape{hw, hw, c}, out_c(oc) {
    in = BenchVec(shape.elements());
    weights = BenchVec(static_cast<size_t>(kernel) * kernel * c * oc + oc);
    out.resize(static_cast<size_t>(hw) * hw * oc);
    flops = 2.0 * hw * hw * oc * kernel * kernel * c;
  }
};

void BM_Conv2d(benchmark::State& state) {
  ConvSetup s(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)),
              static_cast<int>(state.range(2)));
  std::vector<float> scratch(
      inference::ops::Conv2dScratchElements(s.shape, s.kernel, s.stride));
  for (auto _ : state) {
    inference::ops::Conv2d(s.in.data(), s.shape, s.weights.data(), s.kernel,
                           s.stride, s.out_c, s.out.data(), scratch.data());
    benchmark::DoNotOptimize(s.out.data());
  }
  state.counters["FLOPS"] = benchmark::Counter(
      s.flops * static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Conv2d)->Args({32, 64, 64})->Args({16, 32, 64})->Args({64, 16, 16});

void BM_Conv2dNaive(benchmark::State& state) {
  ConvSetup s(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)),
              static_cast<int>(state.range(2)));
  for (auto _ : state) {
    inference::ops::Conv2dNaive(s.in.data(), s.shape, s.weights.data(), s.kernel,
                                s.stride, s.out_c, s.out.data());
    benchmark::DoNotOptimize(s.out.data());
  }
  state.counters["FLOPS"] = benchmark::Counter(
      s.flops * static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Conv2dNaive)->Args({32, 64, 64})->Args({16, 32, 64})->Args({64, 16, 16});

struct DepthwiseSetup {
  model::TensorShape shape;
  static constexpr int kernel = 3;
  static constexpr int stride = 1;
  std::vector<float> in, weights, out;
  double flops = 0;

  explicit DepthwiseSetup(int hw, int c) : shape{hw, hw, c} {
    in = BenchVec(shape.elements());
    weights = BenchVec(static_cast<size_t>(kernel) * kernel * c + c);
    out.resize(shape.elements());
    flops = 2.0 * hw * hw * kernel * kernel * c;
  }
};

void BM_DepthwiseConv2d(benchmark::State& state) {
  DepthwiseSetup s(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  for (auto _ : state) {
    inference::ops::DepthwiseConv2d(s.in.data(), s.shape, s.weights.data(),
                                    s.kernel, s.stride, s.out.data());
    benchmark::DoNotOptimize(s.out.data());
  }
  state.counters["FLOPS"] = benchmark::Counter(
      s.flops * static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DepthwiseConv2d)->Args({64, 64})->Args({32, 256});

void BM_DepthwiseConv2dNaive(benchmark::State& state) {
  DepthwiseSetup s(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  for (auto _ : state) {
    inference::ops::DepthwiseConv2dNaive(s.in.data(), s.shape, s.weights.data(),
                                         s.kernel, s.stride, s.out.data());
    benchmark::DoNotOptimize(s.out.data());
  }
  state.counters["FLOPS"] = benchmark::Counter(
      s.flops * static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DepthwiseConv2dNaive)->Args({64, 64})->Args({32, 256});

void BM_Dense(benchmark::State& state) {
  const size_t in_features = static_cast<size_t>(state.range(0));
  const int units = static_cast<int>(state.range(1));
  std::vector<float> in = BenchVec(in_features);
  std::vector<float> weights = BenchVec(in_features * units + units);
  std::vector<float> out(units);
  for (auto _ : state) {
    inference::ops::Dense(in.data(), in_features, weights.data(), units, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["FLOPS"] = benchmark::Counter(
      2.0 * static_cast<double>(in_features) * units * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Dense)->Args({1024, 1024})->Args({4096, 256});

void BM_DenseNaive(benchmark::State& state) {
  const size_t in_features = static_cast<size_t>(state.range(0));
  const int units = static_cast<int>(state.range(1));
  std::vector<float> in = BenchVec(in_features);
  std::vector<float> weights = BenchVec(in_features * units + units);
  std::vector<float> out(units);
  for (auto _ : state) {
    inference::ops::DenseNaive(in.data(), in_features, weights.data(), units,
                               out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["FLOPS"] = benchmark::Counter(
      2.0 * static_cast<double>(in_features) * units * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DenseNaive)->Args({1024, 1024})->Args({4096, 256});

void BM_X25519SharedSecret(benchmark::State& state) {
  auto a = crypto::GenerateX25519KeyPair();
  auto b = crypto::GenerateX25519KeyPair();
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::X25519SharedSecret(a.private_key, b.public_key));
  }
}
BENCHMARK(BM_X25519SharedSecret);

void BM_RatlsMutualHandshake(benchmark::State& state) {
  sgx::AttestationAuthority authority;
  sgx::SgxPlatform platform(sgx::SgxGeneration::kSgx2, &authority);
  sgx::EnclaveImage server_image("s", {{"c", ToBytes("ks")}}, {});
  sgx::EnclaveImage client_image("c", {{"c", ToBytes("rt")}}, {});
  auto server = std::move(*platform.CreateEnclave(server_image));
  auto client = std::move(*platform.CreateEnclave(client_image));
  for (auto _ : state) {
    ratls::RatlsInitiator initiator(&authority, client.get());
    auto hello = initiator.Start();
    ratls::RatlsAcceptor acceptor(server.get());
    auto accepted = acceptor.Accept(*hello, true);
    benchmark::DoNotOptimize(initiator.Finish(accepted->hello, server->mrenclave()));
  }
}
BENCHMARK(BM_RatlsMutualHandshake);

void BM_ModelSerializeParse(benchmark::State& state) {
  model::ZooSpec spec;
  spec.arch = model::Architecture::kDsNet;
  spec.scale = 0.01;
  spec.input_hw = 16;
  auto graph = model::BuildModel(spec);
  Bytes wire = model::SerializeModel(*graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::ParseModel(wire));
  }
  state.SetBytesProcessed(state.iterations() * wire.size());
}
BENCHMARK(BM_ModelSerializeParse);

void BM_InferenceExecute(benchmark::State& state) {
  auto kind = state.range(0) == 0 ? inference::FrameworkKind::kTflm
                                  : inference::FrameworkKind::kTvm;
  model::ZooSpec spec;
  spec.arch = model::Architecture::kMbNet;
  spec.scale = 0.01;
  spec.input_hw = 16;
  auto graph = model::BuildModel(spec);
  auto framework = inference::CreateFramework(kind);
  auto loaded = framework->WrapModel(*graph);
  auto runtime = std::move(*framework->CreateRuntime(*loaded));
  Bytes input = model::GenerateRandomInput(*graph, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime->Execute(input));
  }
  state.SetLabel(inference::ToString(kind));
}
BENCHMARK(BM_InferenceExecute)->Arg(0)->Arg(1);

void BM_SemirtHotPath(benchmark::State& state) {
  LiveRig rig(0.01);
  rig.DeployModel(model::Architecture::kMbNet);
  semirt::SemirtOptions options;
  rig.Authorize(model::Architecture::kMbNet, options);
  auto instance = rig.MakeInstance(options);
  // Warm to hot.
  (void)rig.TimedRequest(instance.get(), model::Architecture::kMbNet, options);
  uint64_t seed = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rig.TimedRequest(instance.get(), model::Architecture::kMbNet, options, seed++));
  }
}
BENCHMARK(BM_SemirtHotPath);

}  // namespace
}  // namespace sesemi::bench

BENCHMARK_MAIN();
