// Reproduces Appendix C Figure 16: remote attestation latency versus the
// number of enclaves generating quotes concurrently — ECDSA/DCAP on SGX2 vs
// EPID/IAS on SGX1 — plus a live measurement of this repo's full RA-TLS
// mutual handshake.

#include <chrono>

#include "bench/bench_common.h"
#include "ratls/handshake.h"

namespace sesemi::bench {
namespace {

void CalibratedSection() {
  PrintSection("Calibrated attestation latency (s); size-independent per the paper");
  std::printf("%-12s %18s %18s\n", "#enclaves", "SGX2-ECDSA (16/128MB)",
              "SGX1-EPID (16/128MB)");
  sim::CostModel sgx2 = sim::CostModel::PaperSgx2();
  sim::CostModel sgx1 = sim::CostModel::PaperSgx1();
  for (int n : {1, 2, 4, 8, 16}) {
    std::printf("%-12d %18.2f %18.2f\n", n, sgx2.AttestationSeconds(n),
                sgx1.AttestationSeconds(n));
  }
}

void MeasuredSection() {
  PrintSection("Measured: full RA-TLS mutual handshake on the functional simulator");
  sgx::AttestationAuthority authority;
  sgx::SgxPlatform platform(sgx::SgxGeneration::kSgx2, &authority);
  sgx::EnclaveConfig config;
  config.num_tcs = 4;
  sgx::EnclaveImage server_image("server", {{"c", ToBytes("ks")}}, config);
  sgx::EnclaveImage client_image("client", {{"c", ToBytes("rt")}}, config);
  auto server = platform.CreateEnclave(server_image);
  auto client = platform.CreateEnclave(client_image);
  if (!server.ok() || !client.ok()) return;

  const int kIters = 50;
  auto t0 = std::chrono::steady_clock::now();
  int ok = 0;
  for (int i = 0; i < kIters; ++i) {
    ratls::RatlsInitiator initiator(&authority, client->get());
    auto hello = initiator.Start();
    if (!hello.ok()) continue;
    ratls::RatlsAcceptor acceptor(server->get());
    auto accepted = acceptor.Accept(*hello, /*require_peer_quote=*/true);
    if (!accepted.ok()) continue;
    auto session = initiator.Finish(accepted->hello, (*server)->mrenclave());
    ok += session.ok();
  }
  double elapsed = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - t0).count();
  std::printf("%d/%d mutual handshakes in %.3f s (%.2f ms each: X25519 x4 + "
              "quote gen/verify x2 + HKDF)\n",
              ok, kIters, elapsed, 1000 * elapsed / kIters);
}

}  // namespace
}  // namespace sesemi::bench

int main() {
  sesemi::bench::PrintHeader("Figure 16 — remote attestation overhead");
  sesemi::bench::CalibratedSection();
  sesemi::bench::MeasuredSection();
  std::printf("\n(paper: ECDSA <0.1 s solo rising to ~1 s at 16 concurrent quotes;\n"
              " EPID ~2-4 s — it must round-trip to the Intel Attestation Service)\n");
  return 0;
}
