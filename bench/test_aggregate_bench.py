#!/usr/bin/env python3
"""Smoke tests for aggregate_bench.py (run in CI: python3 bench/test_aggregate_bench.py).

The aggregator folds per-commit artifact folders into one trajectory, and
real artifact trees are messy: commits whose CI run expired (missing files),
interrupted uploads (empty or truncated JSON), crashed bench runs (garbage
lines). Every one of those must warn and skip — never abort the fold, never
emit an invalid trajectory document.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

AGGREGATE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                         "aggregate_bench.py")


def run(args, cwd):
    return subprocess.run([sys.executable, AGGREGATE] + args, cwd=cwd,
                          capture_output=True, text=True)


def micro_doc(names_and_flops):
    return json.dumps({"benchmarks": [
        {"name": name, "FLOPS": flops} for name, flops in names_and_flops]})


class AggregateBenchTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.dir = self.tmp.name

    def tearDown(self):
        self.tmp.cleanup()

    def write(self, rel, content):
        path = os.path.join(self.dir, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as f:
            f.write(content)
        return path

    def test_happy_path_two_commits(self):
        self.write("a1b2c3/BENCH_micro.json",
                   micro_doc([("BM_DenseFp32/256", 1e9),
                              ("BM_DenseInt8/256", 2e9)]))
        self.write("a1b2c3/BENCH_sched.json",
                   '{"section": "fairness", "jain": 0.99}\n')
        self.write("d4e5f6/BENCH_micro.json",
                   micro_doc([("BM_DenseFp32/256", 1.1e9)]))
        r = run([self.dir, "--keep-order"], self.dir)
        self.assertEqual(r.returncode, 0, r.stderr)
        doc = json.loads(r.stdout)
        self.assertEqual(len(doc["points"]), 2)
        by_label = {p["label"]: p for p in doc["points"]}
        self.assertEqual(by_label["a1b2c3"]["metrics"]["BM_DenseInt8/256"], 2e9)
        self.assertEqual(by_label["a1b2c3"]["sched"]["fairness"]["jain"], 0.99)
        self.assertEqual(by_label["d4e5f6"]["metrics"]["BM_DenseFp32/256"], 1.1e9)

    def test_missing_file_warns_and_skips(self):
        good = self.write("ok/BENCH_micro.json",
                          micro_doc([("BM_GcmSealVaes/65536", 3e9)]))
        r = run([good, os.path.join(self.dir, "gone/BENCH_micro.json")],
                self.dir)
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("no such file", r.stderr)
        doc = json.loads(r.stdout)
        self.assertEqual(len(doc["points"]), 1)
        self.assertIn("BM_GcmSealVaes/65536", doc["points"][0]["metrics"])

    def test_empty_and_corrupt_artifacts_warn_and_skip(self):
        self.write("c1/BENCH_micro.json", "")                  # empty upload
        self.write("c1/BENCH_sched.json",
                   'not json\n{"section": "batching", "n": 3}\n')  # partial
        self.write("c2/BENCH_micro.json", '{"benchmarks": [truncated')
        self.write("c3/BENCH_micro.json",
                   micro_doc([("BM_Conv2dInt8/mbnet", 4e9)]))
        r = run([self.dir], self.dir)
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("empty artifact", r.stderr)
        self.assertIn("malformed line", r.stderr)
        self.assertIn("unreadable micro artifact", r.stderr)
        doc = json.loads(r.stdout)
        # c1 survives through its one good sched line; c2 had nothing usable
        # and is dropped rather than emitted as an all-empty point.
        labels = {p["label"] for p in doc["points"]}
        self.assertEqual(labels, {"c1", "c3"})
        self.assertIn("dropped", r.stderr)
        c1 = next(p for p in doc["points"] if p["label"] == "c1")
        self.assertEqual(c1["sched"]["batching"]["n"], 3)

    def test_everything_missing_still_emits_valid_doc(self):
        r = run([os.path.join(self.dir, "nothing-here")], self.dir)
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertEqual(json.loads(r.stdout), {"points": []})

    def test_label_override_merges_files(self):
        self.write("x/BENCH_micro.json", micro_doc([("BM_A", 1.0)]))
        self.write("y/BENCH_micro.json", micro_doc([("BM_B", 2.0)]))
        r = run([self.dir, "--label", "head"], self.dir)
        self.assertEqual(r.returncode, 0, r.stderr)
        doc = json.loads(r.stdout)
        self.assertEqual(len(doc["points"]), 1)
        self.assertEqual(set(doc["points"][0]["metrics"]), {"BM_A", "BM_B"})


if __name__ == "__main__":
    unittest.main()
