#ifndef SESEMI_BENCH_BENCH_FNPACKER_COMMON_H_
#define SESEMI_BENCH_BENCH_FNPACKER_COMMON_H_

// Shared driver for the FnPacker evaluation (Tables III & IV): five
// TVM-RSNET models (m0-m4), Poisson traffic on m0/m1 at 2 rps for 8 minutes,
// and two interactive sessions sweeping m0-m4 at ~4 and ~6 minutes.
// Routed onto simulated endpoints by FnPacker / One-to-one / All-in-one.

#include <map>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "fnpacker/router.h"
#include "sim/cluster.h"
#include "workload/generators.h"

namespace sesemi::bench {

struct FnPackerRun {
  /// Avg latency of the Poisson traffic (Table III).
  double poisson_avg_ms = 0;
  /// Per (session user, model) latency in ms (Table IV).
  std::map<std::pair<std::string, std::string>, double> session_ms;
};

inline std::vector<workload::Arrival> FnPackerWorkload() {
  std::vector<std::vector<workload::Arrival>> parts;
  parts.push_back(workload::Poisson(2.0, 480, "m0", "poisson-user", 101));
  parts.push_back(workload::Poisson(2.0, 480, "m1", "poisson-user", 202));
  parts.push_back(workload::InteractiveSession(
      SecondsToMicros(240), {"m0", "m1", "m2", "m3", "m4"}, "session1", 4.0));
  parts.push_back(workload::InteractiveSession(
      SecondsToMicros(360), {"m0", "m1", "m2", "m3", "m4"}, "session2", 4.0));
  return workload::Merge(std::move(parts));
}

/// Run the workload through `router`; endpoints map to simulated functions
/// "ep<i>", each able to serve any of the five models (model switches cost a
/// reload inside the shared sandbox).
inline FnPackerRun RunWithRouter(fnpacker::RequestRouter* router) {
  sim::SimConfig config;
  config.num_nodes = 8;
  config.cost_model = sim::CostModel::PaperSgx2();
  sim::ClusterSim sim(config);
  for (int i = 0; i < router->num_endpoints(); ++i) {
    sim::SimFunction fn;
    fn.name = "ep" + std::to_string(i);
    fn.framework = inference::FrameworkKind::kTvm;
    fn.arch = model::Architecture::kRsNet;
    fn.num_tcs = 1;
    fn.container_memory_bytes = 768ull << 20;
    sim.AddFunction(fn);
  }

  FnPackerRun result;
  double poisson_total_ms = 0;
  int poisson_count = 0;

  auto trace = FnPackerWorkload();
  for (const auto& arrival : trace) {
    workload::Arrival a = arrival;
    sim.queue().ScheduleAt(a.time, [&sim, router, a, &result, &poisson_total_ms,
                                    &poisson_count] {
      auto endpoint = router->Route(a.model_id, sim.now());
      if (!endpoint.ok()) return;
      int ep = *endpoint;
      sim.Submit("ep" + std::to_string(ep), a.model_id, a.user_id, sim.now(),
                 [router, ep, &result, &poisson_total_ms,
                  &poisson_count](const sim::RequestRecord& record) {
                   router->OnComplete(record.model_id, ep, record.complete);
                   double ms = 1000.0 * MicrosToSeconds(record.latency());
                   if (record.user_id == "poisson-user") {
                     poisson_total_ms += ms;
                     poisson_count++;
                   } else {
                     result.session_ms[{record.user_id, record.model_id}] = ms;
                   }
                 });
    });
  }
  sim.Run();
  result.poisson_avg_ms = poisson_count > 0 ? poisson_total_ms / poisson_count : 0;
  return result;
}

inline std::vector<std::string> FnPackerModels() {
  return {"m0", "m1", "m2", "m3", "m4"};
}

}  // namespace sesemi::bench

#endif  // SESEMI_BENCH_BENCH_FNPACKER_COMMON_H_
