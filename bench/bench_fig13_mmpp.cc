// Reproduces Figure 13: average latency over time when serving an MMPP
// workload (rate alternating around 20<->40 rps) on an 8-node cluster, for
// TVM-DSNET and TVM-RSNET, comparing SeSeMI / Iso-reuse / Native.

#include "bench/bench_common.h"
#include "sim/cluster.h"
#include "workload/generators.h"

namespace sesemi::bench {
namespace {

struct RunResult {
  std::vector<double> bucket_avg;  // avg latency per 30 s bucket
  double overall_avg = 0;
};

RunResult RunMmpp(model::Architecture arch, semirt::RuntimeMode mode,
                  const std::vector<workload::Arrival>& trace, double duration_s) {
  sim::SimConfig config;
  config.num_nodes = 8;
  config.cost_model = sim::CostModel::PaperSgx2();
  // §VI-C: invoker memory is configured so the enclave threads on a node
  // never exceed the physical cores; with the Table V memory budgets this
  // caps containers per node (2 here, 16 cluster-wide), which is what makes
  // the system sensitive to the 40 rps bursts like the paper's testbed.
  uint64_t container_memory =
      arch == model::Architecture::kRsNet ? (768ull << 20) : (256ull << 20);
  // RSNET's ~1 s executions need more in-flight slots for the same rate
  // (the paper's RSNET run is near-saturated: avgs of 8-12 s).
  config.invoker_memory_bytes =
      (arch == model::Architecture::kRsNet ? 6 : 3) * container_memory;
  sim::ClusterSim sim(config);
  sim::SimFunction fn;
  fn.name = "f";
  fn.framework = inference::FrameworkKind::kTvm;
  fn.arch = arch;
  fn.mode = mode;
  fn.num_tcs = 1;
  fn.container_memory_bytes = container_memory;
  sim.AddFunction(fn);
  // Paper warms the system at 20 rps before measuring.
  const auto& p = config.cost_model.profile(fn.framework, fn.arch);
  int warm = std::max(1, std::min(16, static_cast<int>(20 * p.execute_s * 1.5 + 1)));
  (void)sim.Prewarm("f", warm, "m0", "u0");
  for (const auto& a : trace) sim.Submit("f", a.model_id, a.user_id, a.time);
  sim.Run();

  RunResult result;
  const double kBucket = 30.0;
  for (double t = 0; t < duration_s; t += kBucket) {
    result.bucket_avg.push_back(sim.metrics().AvgLatencySecondsBetween(
        SecondsToMicros(t), SecondsToMicros(t + kBucket)));
  }
  result.overall_avg = sim.metrics().AvgLatencySeconds();
  return result;
}

void RunModel(const char* title, model::Architecture arch) {
  PrintSection(title);
  workload::MmppSpec spec;  // 20 <-> 40 rps, 900 s
  auto trace = workload::Mmpp(spec, "m0", "u0");
  std::printf("workload: %zu requests over %.0f s (mean %.1f rps)\n", trace.size(),
              spec.duration_s, trace.size() / spec.duration_s);

  std::map<semirt::RuntimeMode, RunResult> results;
  for (auto mode : {semirt::RuntimeMode::kSesemi, semirt::RuntimeMode::kIsoReuse,
                    semirt::RuntimeMode::kNative}) {
    results[mode] = RunMmpp(arch, mode, trace, spec.duration_s);
  }

  std::printf("%-10s %10s %10s %10s\n", "t (s)", "SeSeMI", "Iso-reuse", "Native");
  const auto& sesemi_buckets = results[semirt::RuntimeMode::kSesemi].bucket_avg;
  for (size_t i = 0; i < sesemi_buckets.size(); ++i) {
    std::printf("%-10.0f", (i + 1) * 30.0);
    for (auto mode : {semirt::RuntimeMode::kSesemi, semirt::RuntimeMode::kIsoReuse,
                      semirt::RuntimeMode::kNative}) {
      std::printf(" %10.2f", results[mode].bucket_avg[i]);
    }
    std::printf("\n");
  }
  std::printf("overall avg: SeSeMI %.2f s, Iso-reuse %.2f s, Native %.2f s",
              results[semirt::RuntimeMode::kSesemi].overall_avg,
              results[semirt::RuntimeMode::kIsoReuse].overall_avg,
              results[semirt::RuntimeMode::kNative].overall_avg);
  double improvement = 100.0 * (1.0 - results[semirt::RuntimeMode::kSesemi].overall_avg /
                                          results[semirt::RuntimeMode::kIsoReuse].overall_avg);
  std::printf("  (SeSeMI vs Iso-reuse: %.0f%% lower)\n", improvement);
}

}  // namespace
}  // namespace sesemi::bench

int main() {
  sesemi::bench::PrintHeader("Figure 13 — serving under the MMPP workload (8 nodes)");
  sesemi::bench::RunModel("(b) TVM-DSNET", sesemi::model::Architecture::kDsNet);
  sesemi::bench::RunModel("(c) TVM-RSNET", sesemi::model::Architecture::kRsNet);
  std::printf("\n(paper: DSNET avg 0.64 s SeSeMI vs 3.35 s Iso-reuse — 81%% lower;\n"
              " Native worst and unstable; Iso-reuse stays elevated after bursts)\n");
  return 0;
}
