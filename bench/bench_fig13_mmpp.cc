// Reproduces Figure 13: average latency over time when serving an MMPP
// workload (rate alternating around 20<->40 rps) on an 8-node cluster, for
// TVM-DSNET and TVM-RSNET, comparing SeSeMI / Iso-reuse / Native.
//
// Alongside the simulated curves, a live per-class section replays a
// time-compressed MMPP trace through a real platform with the RT tier
// enabled — every k-th arrival rides the interactive class — and reports
// per-class inv/s and latency percentiles.
//
// JSON lines (grep '^{' -> BENCH_fig13.json, docs/BENCHMARKS.md):
//   section "mmpp_dsnet"/"mmpp_rsnet" — per-mode overall averages (sim);
//   section "classes" — interactive_*/bulk_* inv/s and p50/p99 (live).
// Flags: --quick shrinks the live replay for CI smoke runs; --quantize runs
// the live per-class leg through the int8 inference tier (the "classes" line
// carries a "quantize" field so trajectories can tell the series apart).

#include <algorithm>
#include <chrono>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "serverless/platform.h"
#include "sim/cluster.h"
#include "workload/generators.h"

namespace sesemi::bench {
namespace {

bool g_quick = false;
bool g_quantize = false;

struct RunResult {
  std::vector<double> bucket_avg;  // avg latency per 30 s bucket
  double overall_avg = 0;
};

RunResult RunMmpp(model::Architecture arch, semirt::RuntimeMode mode,
                  const std::vector<workload::Arrival>& trace, double duration_s) {
  sim::SimConfig config;
  config.num_nodes = 8;
  config.cost_model = sim::CostModel::PaperSgx2();
  // §VI-C: invoker memory is configured so the enclave threads on a node
  // never exceed the physical cores; with the Table V memory budgets this
  // caps containers per node (2 here, 16 cluster-wide), which is what makes
  // the system sensitive to the 40 rps bursts like the paper's testbed.
  uint64_t container_memory =
      arch == model::Architecture::kRsNet ? (768ull << 20) : (256ull << 20);
  // RSNET's ~1 s executions need more in-flight slots for the same rate
  // (the paper's RSNET run is near-saturated: avgs of 8-12 s).
  config.invoker_memory_bytes =
      (arch == model::Architecture::kRsNet ? 6 : 3) * container_memory;
  sim::ClusterSim sim(config);
  sim::SimFunction fn;
  fn.name = "f";
  fn.framework = inference::FrameworkKind::kTvm;
  fn.arch = arch;
  fn.mode = mode;
  fn.num_tcs = 1;
  fn.container_memory_bytes = container_memory;
  sim.AddFunction(fn);
  // Paper warms the system at 20 rps before measuring.
  const auto& p = config.cost_model.profile(fn.framework, fn.arch);
  int warm = std::max(1, std::min(16, static_cast<int>(20 * p.execute_s * 1.5 + 1)));
  (void)sim.Prewarm("f", warm, "m0", "u0");
  for (const auto& a : trace) sim.Submit("f", a.model_id, a.user_id, a.time);
  sim.Run();

  RunResult result;
  const double kBucket = 30.0;
  for (double t = 0; t < duration_s; t += kBucket) {
    result.bucket_avg.push_back(sim.metrics().AvgLatencySecondsBetween(
        SecondsToMicros(t), SecondsToMicros(t + kBucket)));
  }
  result.overall_avg = sim.metrics().AvgLatencySeconds();
  return result;
}

void RunModel(const char* title, const char* section, model::Architecture arch) {
  PrintSection(title);
  workload::MmppSpec spec;  // 20 <-> 40 rps, 900 s
  auto trace = workload::Mmpp(spec, "m0", "u0");
  std::printf("workload: %zu requests over %.0f s (mean %.1f rps)\n", trace.size(),
              spec.duration_s, trace.size() / spec.duration_s);

  std::map<semirt::RuntimeMode, RunResult> results;
  for (auto mode : {semirt::RuntimeMode::kSesemi, semirt::RuntimeMode::kIsoReuse,
                    semirt::RuntimeMode::kNative}) {
    results[mode] = RunMmpp(arch, mode, trace, spec.duration_s);
  }

  std::printf("%-10s %10s %10s %10s\n", "t (s)", "SeSeMI", "Iso-reuse", "Native");
  const auto& sesemi_buckets = results[semirt::RuntimeMode::kSesemi].bucket_avg;
  for (size_t i = 0; i < sesemi_buckets.size(); ++i) {
    std::printf("%-10.0f", (i + 1) * 30.0);
    for (auto mode : {semirt::RuntimeMode::kSesemi, semirt::RuntimeMode::kIsoReuse,
                      semirt::RuntimeMode::kNative}) {
      std::printf(" %10.2f", results[mode].bucket_avg[i]);
    }
    std::printf("\n");
  }
  std::printf("overall avg: SeSeMI %.2f s, Iso-reuse %.2f s, Native %.2f s",
              results[semirt::RuntimeMode::kSesemi].overall_avg,
              results[semirt::RuntimeMode::kIsoReuse].overall_avg,
              results[semirt::RuntimeMode::kNative].overall_avg);
  double improvement = 100.0 * (1.0 - results[semirt::RuntimeMode::kSesemi].overall_avg /
                                          results[semirt::RuntimeMode::kIsoReuse].overall_avg);
  std::printf("  (SeSeMI vs Iso-reuse: %.0f%% lower)\n", improvement);
  std::printf(
      "{\"bench\":\"fig13\",\"section\":\"%s\",\"requests\":%zu,"
      "\"sesemi_avg_s\":%.3f,\"isoreuse_avg_s\":%.3f,\"native_avg_s\":%.3f,"
      "\"sesemi_vs_isoreuse_pct\":%.1f}\n",
      section, trace.size(), results[semirt::RuntimeMode::kSesemi].overall_avg,
      results[semirt::RuntimeMode::kIsoReuse].overall_avg,
      results[semirt::RuntimeMode::kNative].overall_avg, improvement);
}

double PercentileUs(std::vector<double> samples, double pct) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const double rank = pct / 100.0 * static_cast<double>(samples.size() - 1);
  return samples[static_cast<size_t>(rank + 0.5)];
}

// Live per-class serving: the paper's MMPP arrival process, time-compressed,
// with every k-th arrival promoted to the interactive class. The platform
// runs with the RT tier on, so class 0 rides dedicated lanes while the bulk
// class batches through the shared pool — the BENCH_fig13.json "classes"
// line records what each class actually got (inv/s, p50/p99).
void ClassesSection() {
  PrintSection("(d) live per-class serving — MMPP bulk + interactive trickle");

  serverless::PlatformConfig config;
  config.rt.enabled = true;
  config.rt.classes = 1;
  config.rt.executor.num_lanes = 1;
  // Privileged knobs degrade to unpinned lanes without CAP_SYS_NICE.
  config.rt.executor.pin_threads = true;
  config.rt.executor.elevate_priority = true;

  LiveRig live(/*scale=*/0.01, /*input_hw=*/16);
  const model::ModelGraph& graph = live.DeployModel(model::Architecture::kMbNet);
  semirt::SemirtOptions options;
  options.num_tcs = 8;
  // --quantize: the containers compile MBNET through the int8 tier (and the
  // enclave identity users authorize against reflects it).
  options.quantize = g_quantize;
  live.Authorize(model::Architecture::kMbNet, options);
  serverless::ServerlessPlatform platform(config, &live.authority(),
                                          &live.storage(), live.keyservice());

  auto deploy = [&](const char* name, int priority, int max_batch) {
    serverless::FunctionSpec spec;
    spec.name = name;
    spec.options = options;
    spec.sched.priority = priority;
    spec.sched.max_batch = max_batch;
    return platform.DeployFunction(spec).ok();
  };
  if (!deploy("fn-interactive", /*priority=*/0, /*max_batch=*/1) ||
      !deploy("fn-bulk", /*priority=*/1, /*max_batch=*/4)) {
    return;
  }

  const sgx::Measurement es = semirt::SemirtInstance::MeasurementFor(options);
  auto request = [&](uint64_t seed) {
    Bytes input = model::GenerateRandomInput(graph, seed);
    return live.user().BuildRequest(model::ToString(model::Architecture::kMbNet),
                                    input, &es);
  };
  // Warm both containers (and the RT lane's first dispatch) off the clock.
  for (const char* fn : {"fn-bulk", "fn-interactive"}) {
    auto warm = request(1);
    if (!warm.ok()) return;
    (void)platform.Invoke(fn, *warm);
  }

  // The paper's 20<->40 rps MMPP shape, compressed 100x so the replay fits a
  // CI smoke run while keeping the bursty arrival structure.
  workload::MmppSpec spec;
  spec.duration_s = g_quick ? 90 : 300;
  const double compress = 100.0;
  constexpr int kInteractiveEvery = 5;
  const auto trace = workload::Mmpp(spec, "mbnet", "bench-user");

  std::vector<std::future<serverless::InvocationResult>> interactive_futures;
  std::vector<std::future<serverless::InvocationResult>> bulk_futures;
  const auto t0 = std::chrono::steady_clock::now();
  size_t i = 0;
  for (const workload::Arrival& arrival : trace) {
    std::this_thread::sleep_until(
        t0 + std::chrono::microseconds(
                 static_cast<int64_t>(static_cast<double>(arrival.time) / compress)));
    auto r = request(i % 8 + 2);
    if (!r.ok()) return;
    if (i % kInteractiveEvery == 0) {
      interactive_futures.push_back(
          platform.InvokeAsync("fn-interactive", std::move(*r)));
    } else {
      bulk_futures.push_back(platform.InvokeAsync("fn-bulk", std::move(*r)));
    }
    ++i;
  }

  // Per-request latency is queue wait + pipeline time from the result itself,
  // so harvesting order does not skew the samples.
  auto harvest = [](std::vector<std::future<serverless::InvocationResult>>* fs,
                    std::vector<double>* lat_us) {
    int ok = 0;
    for (auto& f : *fs) {
      serverless::InvocationResult r = f.get();
      if (!r.response.ok()) continue;
      ok++;
      lat_us->push_back(static_cast<double>(r.queue_wait + r.timings.total));
    }
    return ok;
  };
  std::vector<double> interactive_us;
  std::vector<double> bulk_us;
  const int interactive_ok = harvest(&interactive_futures, &interactive_us);
  const int bulk_ok = harvest(&bulk_futures, &bulk_us);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  if (wall_s <= 0 || interactive_ok == 0 || bulk_ok == 0) {
    std::printf("(classes section failed to complete; skipping line)\n");
    return;
  }

  const serverless::RtTierStats rt = platform.rt_stats();
  std::printf("%-14s %10s %12s %12s\n", "class", "inv/s", "p50 (us)", "p99 (us)");
  std::printf("%-14s %10.1f %12.0f %12.0f\n", "interactive",
              interactive_ok / wall_s, PercentileUs(interactive_us, 50.0),
              PercentileUs(interactive_us, 99.0));
  std::printf("%-14s %10.1f %12.0f %12.0f\n", "bulk", bulk_ok / wall_s,
              PercentileUs(bulk_us, 50.0), PercentileUs(bulk_us, 99.0));
  std::printf("rt lane dispatches: %llu (fallbacks %llu)\n",
              static_cast<unsigned long long>(rt.dispatches),
              static_cast<unsigned long long>(rt.fallbacks));
  std::printf(
      "{\"bench\":\"fig13\",\"section\":\"%s\","
      "\"interactive_inv_per_s\":%.1f,\"interactive_p50_us\":%.0f,"
      "\"interactive_p99_us\":%.0f,\"bulk_inv_per_s\":%.1f,"
      "\"bulk_p50_us\":%.0f,\"bulk_p99_us\":%.0f,"
      "\"rt_dispatches\":%llu,\"rt_fallbacks\":%llu,\"quantize\":%s}\n",
      g_quantize ? "classes_int8" : "classes", interactive_ok / wall_s,
      PercentileUs(interactive_us, 50.0),
      PercentileUs(interactive_us, 99.0), bulk_ok / wall_s,
      PercentileUs(bulk_us, 50.0), PercentileUs(bulk_us, 99.0),
      static_cast<unsigned long long>(rt.dispatches),
      static_cast<unsigned long long>(rt.fallbacks),
      g_quantize ? "true" : "false");
}

}  // namespace
}  // namespace sesemi::bench

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) sesemi::bench::g_quick = true;
    if (std::strcmp(argv[i], "--quantize") == 0) sesemi::bench::g_quantize = true;
  }
  sesemi::bench::PrintHeader("Figure 13 — serving under the MMPP workload (8 nodes)");
  sesemi::bench::RunModel("(b) TVM-DSNET", "mmpp_dsnet",
                          sesemi::model::Architecture::kDsNet);
  sesemi::bench::RunModel("(c) TVM-RSNET", "mmpp_rsnet",
                          sesemi::model::Architecture::kRsNet);
  sesemi::bench::ClassesSection();
  std::printf("\n(paper: DSNET avg 0.64 s SeSeMI vs 3.35 s Iso-reuse — 81%% lower;\n"
              " Native worst and unstable; Iso-reuse stays elevated after bursts)\n");
  return 0;
}
