// Differential sim-vs-real validation: one seeded multi-tenant trace is
// replayed through the real cluster dataplane (cluster/) and through the
// discrete-event simulator (sim/cluster) running a cost model *calibrated
// from the real replay's measured stage timings*. The per-function
// completion counts must match exactly; throughput and mean latency must
// agree within the documented tolerance band (see BENCHMARKS.md,
// "Sim-parity tolerance band").
//
// The band is a factor of kToleranceBand (3x) in either direction. It is
// deliberately wide: the real run pays scheduler queueing, thread wakeup and
// crypto jitter the simulator folds into its calibrated stage means, and CI
// runs this under TSan/ASan where everything slows down together —
// calibration and measurement inflate by the same factor, so the *ratio*
// stays stable while absolute numbers do not.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "client/clients.h"
#include "cluster/cluster.h"
#include "cluster/replay.h"
#include "model/zoo.h"
#include "sim/cluster.h"
#include "sim/cost_model.h"
#include "workload/generators.h"

namespace sesemi::cluster {
namespace {

using client::KeyServiceClient;
using client::ModelOwner;
using client::ModelUser;

constexpr double kToleranceBand = 3.0;
constexpr uint64_t kTraceSeed = 0x7a17;
constexpr int kTenants = 3;
constexpr int kNodes = 2;

// Ratio >= 1 between two positive quantities (floored to avoid 0/0).
double Band(double a, double b) {
  a = std::max(a, 1e-6);
  b = std::max(b, 1e-6);
  return std::max(a / b, b / a);
}

std::string TenantModel(int tenant) { return "t" + std::to_string(tenant); }
std::string TenantUser(int tenant) { return "u" + std::to_string(tenant); }
std::string TenantFunction(int tenant) { return "fn" + std::to_string(tenant); }

// The shared trace: Zipf-skewed per-tenant Poisson rates, ~20 rps for 2.5 s
// of trace time. Tenant tags ("t0".."t2") name the streams; the real binder
// and the sim mapper both translate tag ti -> function fni.
std::vector<workload::Arrival> SharedTrace(uint64_t seed) {
  std::vector<double> rates = workload::ZipfRates(kTenants, 1.0, 20.0);
  std::vector<workload::TenantSpec> tenants;
  for (int i = 0; i < kTenants; ++i) {
    workload::TenantSpec tenant;
    tenant.model_id = TenantModel(i);
    tenant.user_id = TenantUser(i);
    tenant.rps = rates[static_cast<size_t>(i)];
    tenants.push_back(tenant);
  }
  return workload::MultiTenantPoisson(tenants, /*duration_s=*/2.5, seed);
}

int TenantOf(const workload::Arrival& arrival) {
  return arrival.model_id.back() - '0';
}

std::map<std::string, size_t> TraceCounts(
    const std::vector<workload::Arrival>& trace) {
  std::map<std::string, size_t> counts;
  for (const workload::Arrival& arrival : trace) {
    counts[TenantFunction(TenantOf(arrival))]++;
  }
  return counts;
}

TEST(ClusterReplayTest, SeededTraceIsDeterministic) {
  std::vector<workload::Arrival> a = SharedTrace(kTraceSeed);
  std::vector<workload::Arrival> b = SharedTrace(kTraceSeed);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].model_id, b[i].model_id);
    EXPECT_EQ(a[i].user_id, b[i].user_id);
  }
  std::vector<workload::Arrival> c = SharedTrace(kTraceSeed + 1);
  bool differs = c.size() != a.size();
  for (size_t i = 0; !differs && i < a.size(); ++i) differs = a[i].time != c[i].time;
  EXPECT_TRUE(differs);
}

TEST(ClusterReplayTest, SimReplayIsDeterministic) {
  std::vector<workload::Arrival> trace = SharedTrace(kTraceSeed);
  auto run_once = [&] {
    sim::SimConfig config;
    config.num_nodes = kNodes;
    sim::ClusterSim sim(config);
    for (int i = 0; i < kTenants; ++i) {
      sim::SimFunction fn;
      fn.name = TenantFunction(i);
      sim.AddFunction(fn);
    }
    return ReplayTraceOnSim(&sim, trace, [](const workload::Arrival& arrival) {
      return TenantFunction(TenantOf(arrival));
    });
  };
  SimReplayResult a = run_once();
  SimReplayResult b = run_once();
  EXPECT_EQ(a.submitted, trace.size());
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.completions, b.completions);
  // Virtual time is exact, not statistical: identical to the bit.
  EXPECT_EQ(a.mean_latency_s, b.mean_latency_s);
  EXPECT_EQ(a.p99_latency_s, b.p99_latency_s);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
}

class ClusterSimParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto server = keyservice::StartKeyService(&ks_platform_);
    ASSERT_TRUE(server.ok());
    keyservice_ = std::move(*server);
    auto ks_client = KeyServiceClient::Connect(
        keyservice_.get(), &authority_,
        keyservice::KeyServiceEnclave::ExpectedMeasurement());
    ASSERT_TRUE(ks_client.ok());
    client_ = std::move(*ks_client);

    owner_ = std::make_unique<ModelOwner>("owner");
    user_ = std::make_unique<ModelUser>("user");
    ASSERT_TRUE(owner_->Register(client_.get()).ok());
    ASSERT_TRUE(user_->Register(client_.get()).ok());

    model::ZooSpec spec;
    spec.model_id = "m0";
    spec.scale = 0.002;
    spec.input_hw = 16;
    auto graph = model::BuildModel(spec);
    ASSERT_TRUE(graph.ok());
    graph_ = *graph;
    ASSERT_TRUE(owner_->DeployModel(client_.get(), &storage_, *graph).ok());

    ClusterConfig config;
    config.initial_nodes = kNodes;
    cluster_ = std::make_unique<ClusterDataplane>(config, &authority_, &storage_,
                                                  keyservice_.get());

    for (int i = 0; i < kTenants; ++i) {
      serverless::FunctionSpec fn;
      fn.name = TenantFunction(i);
      ASSERT_TRUE(cluster_->DeployFunction(fn).ok());
    }
    sgx::Measurement es = semirt::SemirtInstance::MeasurementFor({});
    ASSERT_TRUE(owner_->GrantAccess(client_.get(), "m0", es, user_->id()).ok());
    ASSERT_TRUE(user_->ProvisionRequestKey(client_.get(), "m0", es).ok());
  }

  Result<BoundArrival> Bind(const workload::Arrival& arrival) {
    BoundArrival bound;
    bound.function = TenantFunction(TenantOf(arrival));
    Bytes input = model::GenerateRandomInput(graph_, 1);
    SESEMI_ASSIGN_OR_RETURN(bound.request, user_->BuildRequest("m0", input));
    return bound;
  }

  sgx::AttestationAuthority authority_;
  sgx::SgxPlatform ks_platform_{sgx::SgxGeneration::kSgx2, &authority_};
  std::unique_ptr<keyservice::KeyServiceServer> keyservice_;
  std::unique_ptr<KeyServiceClient> client_;
  std::unique_ptr<ModelOwner> owner_;
  std::unique_ptr<ModelUser> user_;
  storage::InMemoryObjectStore storage_;
  model::ModelGraph graph_;
  std::unique_ptr<ClusterDataplane> cluster_;
};

TEST_F(ClusterSimParityTest, RealAndSimAgreeOnSeededTrace) {
  const std::vector<workload::Arrival> trace = SharedTrace(kTraceSeed);
  const std::map<std::string, size_t> expected = TraceCounts(trace);

  // Warm-up (not counted): one invocation per function puts a container at
  // each function's home node, mirroring the sim prewarm below.
  for (int i = 0; i < kTenants; ++i) {
    Result<BoundArrival> bound = Bind(trace.front());
    ASSERT_TRUE(bound.ok());
    serverless::InvocationResult out =
        cluster_->InvokeAsync(TenantFunction(i), std::move(bound->request)).get();
    ASSERT_TRUE(out.response.ok()) << out.response.status().ToString();
  }

  // --- Real dataplane replay, paced in trace time. ---
  ReplayResult real = ReplayTrace(
      cluster_.get(), trace,
      [this](const workload::Arrival& arrival, size_t) { return Bind(arrival); });

  ASSERT_EQ(real.submitted, trace.size());
  ASSERT_EQ(real.ok, trace.size()) << "replay errors: " << real.errors.size();
  // Exact per-function completion parity with the trace itself.
  EXPECT_EQ(real.completions, expected);
  ASSERT_GT(real.mean_hot_total_s, 0.0);

  // --- Calibrate the simulator's cost model from the measured stages. ---
  sim::CalibrationProfile calibration;
  calibration.execute_s = real.mean_hot_total_s;
  calibration.key_fetch_s = real.mean_cold_key_fetch_s;
  calibration.model_load_s = real.mean_cold_model_load_s;
  calibration.runtime_init_s = real.mean_cold_runtime_init_s;

  sim::SimConfig sim_config;
  sim_config.num_nodes = kNodes;
  sim_config.cost_model = sim::CostModel::Calibrated(calibration);
  sim::ClusterSim sim(sim_config);
  for (int i = 0; i < kTenants; ++i) {
    sim::SimFunction fn;
    fn.name = TenantFunction(i);
    sim.AddFunction(fn);
    ASSERT_TRUE(sim.Prewarm(fn.name, 1, TenantModel(i), TenantUser(i)).ok());
  }

  // --- Same trace through the simulator (virtual time). ---
  SimReplayResult simulated =
      ReplayTraceOnSim(&sim, trace, [](const workload::Arrival& arrival) {
        return TenantFunction(TenantOf(arrival));
      });

  // Exact completion parity: every submitted arrival completes on both
  // sides, per function.
  ASSERT_EQ(simulated.submitted, trace.size());
  ASSERT_EQ(simulated.completed, trace.size());
  EXPECT_EQ(simulated.completions, real.completions);

  // Tolerance band on the aggregate behaviour (documented in BENCHMARKS.md).
  EXPECT_LT(Band(real.throughput_rps, simulated.throughput_rps), kToleranceBand)
      << "real " << real.throughput_rps << " rps vs sim "
      << simulated.throughput_rps << " rps";
  EXPECT_LT(Band(real.mean_latency_s, simulated.mean_latency_s), kToleranceBand)
      << "real " << real.mean_latency_s << " s vs sim "
      << simulated.mean_latency_s << " s";
}

}  // namespace
}  // namespace sesemi::cluster
