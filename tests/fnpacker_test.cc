#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "fnpacker/router.h"

namespace sesemi::fnpacker {
namespace {

FnPoolSpec PoolOf(std::vector<std::string> models, int endpoints,
                  TimeMicros idle_timeout = SecondsToMicros(30)) {
  FnPoolSpec spec;
  spec.models = std::move(models);
  spec.num_endpoints = endpoints;
  spec.exclusive_idle_timeout = idle_timeout;
  return spec;
}

TEST(FnPackerTest, UnknownModelRejected) {
  FnPackerRouter router(PoolOf({"m0"}, 1));
  EXPECT_FALSE(router.Route("m9", 0).ok());
}

TEST(FnPackerTest, PendingRequestsStickToEndpoint) {
  FnPackerRouter router(PoolOf({"m0", "m1"}, 2));
  auto e1 = router.Route("m0", 0);
  ASSERT_TRUE(e1.ok());
  // Still in flight: the next m0 request must go to the same endpoint,
  // which is now exclusive.
  auto e2 = router.Route("m0", 1000);
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(*e1, *e2);
  EXPECT_EQ(router.endpoint_state(*e1).exclusive_model, "m0");
  EXPECT_EQ(router.model_state("m0").pending, 2);
}

TEST(FnPackerTest, IdleModelAvoidsBusyEndpoint) {
  FnPackerRouter router(PoolOf({"m0", "m1"}, 2));
  auto e0 = router.Route("m0", 0);
  ASSERT_TRUE(e0.ok());
  // m0 still pending; m1 must get the other endpoint.
  auto e1 = router.Route("m1", 10);
  ASSERT_TRUE(e1.ok());
  EXPECT_NE(*e0, *e1);
}

TEST(FnPackerTest, CompletedModelFreesEndpointAfterTimeout) {
  const TimeMicros timeout = SecondsToMicros(30);
  FnPackerRouter router(PoolOf({"m0", "m1"}, 1, timeout));
  auto e0 = router.Route("m0", 0);
  ASSERT_TRUE(e0.ok());
  router.OnComplete("m0", *e0, SecondsToMicros(1));

  // Endpoint 0 is exclusive to m0 and recently used: m1 has nowhere clean to
  // go (single endpoint) -> falls back, counted as overflow OR reuses after
  // timeout. Before timeout the endpoint is still marked.
  auto e1 = router.Route("m1", SecondsToMicros(2));
  ASSERT_TRUE(e1.ok());
  EXPECT_EQ(*e1, 0);  // only endpoint
  router.OnComplete("m1", *e1, SecondsToMicros(3));

  // After the idle timeout the exclusivity expires cleanly.
  auto e2 = router.Route("m1", SecondsToMicros(40));
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(*e2, 0);
}

TEST(FnPackerTest, InfrequentModelsPackOntoSharedEndpoint) {
  // Three cold models, two endpoints: sequential (non-overlapping) requests
  // should all reuse the first endpoint — that's the packing that saves
  // cold starts (Table IV).
  FnPackerRouter router(PoolOf({"m2", "m3", "m4"}, 2));
  TimeMicros t = 0;
  for (const std::string m : {"m2", "m3", "m4", "m2", "m3"}) {
    auto e = router.Route(m, t);
    ASSERT_TRUE(e.ok());
    EXPECT_EQ(*e, 0) << "sequential idle-model requests should share endpoint 0";
    router.OnComplete(m, *e, t + SecondsToMicros(1));
    t += SecondsToMicros(2);
  }
}

TEST(FnPackerTest, HotModelKeepsExclusiveEndpointWhileColdModelsShare) {
  // m0 streams continuously; m2/m3 arrive occasionally. m0 must never share.
  FnPackerRouter router(PoolOf({"m0", "m2", "m3"}, 2));
  auto hot = router.Route("m0", 0);
  ASSERT_TRUE(hot.ok());

  TimeMicros t = SecondsToMicros(1);
  auto c1 = router.Route("m2", t);
  ASSERT_TRUE(c1.ok());
  EXPECT_NE(*c1, *hot);
  router.OnComplete("m2", *c1, t + 100);

  auto c2 = router.Route("m3", t + SecondsToMicros(1));
  ASSERT_TRUE(c2.ok());
  EXPECT_NE(*c2, *hot) << "cold models must not preempt the hot endpoint";
  router.OnComplete("m3", *c2, t + SecondsToMicros(1) + 100);

  // m0's stream continues on its endpoint.
  auto hot2 = router.Route("m0", t + SecondsToMicros(2));
  ASSERT_TRUE(hot2.ok());
  EXPECT_EQ(*hot2, *hot);
}

TEST(FnPackerTest, PrefersEndpointWithModelLoaded) {
  FnPackerRouter router(PoolOf({"m0", "m1"}, 2));
  auto e0 = router.Route("m0", 0);
  ASSERT_TRUE(e0.ok());
  router.OnComplete("m0", *e0, 100);
  // m0 again, idle: should return to the endpoint that has it loaded.
  auto e1 = router.Route("m0", 200);
  ASSERT_TRUE(e1.ok());
  EXPECT_EQ(*e0, *e1);
  EXPECT_EQ(router.stats().model_switches, 0);
}

TEST(FnPackerTest, OverflowFallsBackToLeastLoaded) {
  FnPackerRouter router(PoolOf({"m0", "m1", "m2"}, 2));
  ASSERT_TRUE(router.Route("m0", 0).ok());   // ep busy
  ASSERT_TRUE(router.Route("m1", 1).ok());   // other ep busy
  ASSERT_TRUE(router.Route("m1", 2).ok());   // m1's ep now pending=2
  auto e = router.Route("m2", 3);            // everything busy
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(router.stats().overflow, 1);
  // Fallback picks the least-loaded endpoint: m0's (pending 1 vs m1's 2).
  EXPECT_EQ(router.endpoint_state(*e).pending, 2);  // 1 (m0) + the overflow
  EXPECT_GE(*e, 0);
  EXPECT_LT(*e, 2);
}

TEST(FnPackerTest, StatsCountRoutingDecisions) {
  FnPackerRouter router(PoolOf({"m0", "m1"}, 1));
  ASSERT_TRUE(router.Route("m0", 0).ok());
  router.OnComplete("m0", 0, 1);
  ASSERT_TRUE(router.Route("m1", SecondsToMicros(60)).ok());
  router.OnComplete("m1", 0, SecondsToMicros(61));
  ASSERT_TRUE(router.Route("m0", SecondsToMicros(120)).ok());
  RouterStats stats = router.stats();
  EXPECT_EQ(stats.routed, 3);
  EXPECT_EQ(stats.model_switches, 0);  // same endpoint, switches counted per model
}

TEST(OneToOneTest, EachModelGetsOwnEndpoint) {
  OneToOneRouter router({"m0", "m1", "m2"});
  EXPECT_EQ(router.num_endpoints(), 3);
  auto e0 = router.Route("m0", 0);
  auto e1 = router.Route("m1", 0);
  auto e2 = router.Route("m2", 0);
  ASSERT_TRUE(e0.ok() && e1.ok() && e2.ok());
  EXPECT_NE(*e0, *e1);
  EXPECT_NE(*e1, *e2);
  // Stable over time.
  EXPECT_EQ(*router.Route("m0", 100), *e0);
  EXPECT_FALSE(router.Route("m9", 0).ok());
}

TEST(AllInOneTest, EverythingLandsOnEndpointZero) {
  AllInOneRouter router;
  EXPECT_EQ(router.num_endpoints(), 1);
  EXPECT_EQ(*router.Route("m0", 0), 0);
  EXPECT_EQ(*router.Route("m1", 5), 0);
  EXPECT_EQ(*router.Route("anything", 10), 0);
}

/// Property sweep: under interleaved two-model traffic, FnPacker never
/// routes a request for model A onto an endpoint with model B's work in
/// flight (no interleaving on one sandbox).
class FnPackerInterleaveTest : public ::testing::TestWithParam<int> {};

TEST_P(FnPackerInterleaveTest, NeverMixesInFlightModels) {
  int endpoints = GetParam();
  FnPackerRouter router(PoolOf({"a", "b"}, endpoints));
  std::map<int, std::string> in_flight_model;  // endpoint -> model
  TimeMicros t = 0;
  for (int i = 0; i < 100; ++i) {
    std::string model = (i % 3 == 0) ? "b" : "a";
    auto e = router.Route(model, t);
    ASSERT_TRUE(e.ok());
    auto it = in_flight_model.find(*e);
    if (it != in_flight_model.end()) {
      EXPECT_EQ(it->second, model)
          << "endpoint " << *e << " mixed models at step " << i;
    }
    in_flight_model[*e] = model;
    // Complete every request after two steps to keep some overlap.
    if (i % 2 == 1) {
      router.OnComplete(model, *e, t + 1);
      in_flight_model.erase(*e);
    }
    t += 1000;
  }
}

INSTANTIATE_TEST_SUITE_P(EndpointCounts, FnPackerInterleaveTest,
                         ::testing::Values(2, 3, 4));

/// ThreadSanitizer target: hammers Route/OnComplete and the read-side
/// accessors from many threads at once. The lock-free model lookup must not
/// race with the locked decision path, and the counters must balance once
/// every request completes.
TEST(FnPackerConcurrencyTest, ParallelRouteAndCompleteStaysConsistent) {
  const std::vector<std::string> models = {"m0", "m1", "m2", "m3"};
  FnPackerRouter router(PoolOf(models, 4));
  constexpr int kThreads = 8;
  constexpr int kIters = 400;

  std::atomic<int> bad_endpoints{0};
  std::atomic<int> route_errors{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string& model = models[t % models.size()];
      for (int i = 0; i < kIters; ++i) {
        auto endpoint = router.Route(model, i);
        if (!endpoint.ok()) {
          route_errors.fetch_add(1);
          continue;
        }
        if (*endpoint < 0 || *endpoint >= router.num_endpoints()) {
          bad_endpoints.fetch_add(1);
        }
        // Exercise the shared-lock read side concurrently with writers.
        (void)router.stats();
        (void)router.model_state(model);
        (void)router.endpoint_state(*endpoint);
        router.OnComplete(model, *endpoint, i + 1);
      }
      // Unknown models must keep failing cleanly under concurrency too.
      EXPECT_FALSE(router.Route("missing", 0).ok());
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(route_errors.load(), 0);
  EXPECT_EQ(bad_endpoints.load(), 0);
  RouterStats stats = router.stats();
  EXPECT_EQ(stats.routed, kThreads * kIters);
  for (const std::string& m : models) {
    EXPECT_EQ(router.model_state(m).pending, 0) << m;
  }
  for (int e = 0; e < router.num_endpoints(); ++e) {
    EXPECT_EQ(router.endpoint_state(e).pending, 0) << e;
  }
}

/// Per-endpoint CAS slots: routing decisions for disjoint models must
/// proceed in parallel on their own endpoints with no cross-talk. Each model
/// is pinned to a distinct endpoint by an initial (held) request, then one
/// thread per model hammers the sticky path concurrently — every decision
/// must land on the pinned endpoint, and the packed {exclusive, pending}
/// words must balance exactly once everything completes.
TEST(FnPackerConcurrencyTest, DistinctEndpointsRouteInParallel) {
  const std::vector<std::string> models = {"m0", "m1", "m2", "m3"};
  FnPackerRouter router(PoolOf(models, 4));

  // Pin: sequential first routes land on distinct endpoints (idle scan).
  std::vector<int> pinned(models.size());
  for (size_t i = 0; i < models.size(); ++i) {
    auto e = router.Route(models[i], 0);
    ASSERT_TRUE(e.ok());
    pinned[i] = *e;
    for (size_t j = 0; j < i; ++j) ASSERT_NE(pinned[i], pinned[j]);
  }

  constexpr int kIters = 500;
  std::atomic<int> unpinned_routes{0};
  std::vector<std::thread> threads;
  for (size_t m = 0; m < models.size(); ++m) {
    threads.emplace_back([&, m] {
      for (int i = 0; i < kIters; ++i) {
        // The initial request is still pending, so every route must stick to
        // the pinned endpoint regardless of what other threads are doing on
        // theirs.
        auto e = router.Route(models[m], i + 1);
        if (!e.ok() || *e != pinned[m]) {
          unpinned_routes.fetch_add(1);
          continue;
        }
        (void)router.endpoint_state(*e);  // reader mixed into the writers
        router.OnComplete(models[m], *e, i + 2);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(unpinned_routes.load(), 0);
  EXPECT_EQ(router.stats().routed,
            static_cast<int>(models.size()) * (kIters + 1));
  EXPECT_EQ(router.stats().overflow, 0);
  EXPECT_EQ(router.stats().model_switches, 0);

  // Release the pins; all counters must return to zero.
  for (size_t i = 0; i < models.size(); ++i) {
    router.OnComplete(models[i], pinned[i], 1000);
    EXPECT_EQ(router.model_state(models[i]).pending, 0) << models[i];
  }
  for (int e = 0; e < router.num_endpoints(); ++e) {
    EXPECT_EQ(router.endpoint_state(e).pending, 0) << e;
  }
}

// ------------------------------------------------------------ circuit breaker

FnPoolSpec BreakerPoolOf(std::vector<std::string> models, int endpoints,
                         int threshold, int probes = 1) {
  FnPoolSpec spec;
  spec.models = std::move(models);
  spec.num_endpoints = endpoints;
  spec.breaker_failure_threshold = threshold;
  spec.breaker_half_open_probes = probes;
  return spec;
}

TEST(FnPackerBreakerTest, DisabledByDefaultNeverOpens) {
  FnPackerRouter router(PoolOf({"m0"}, 1));
  for (int i = 0; i < 10; ++i) {
    auto e = router.Route("m0", i);
    ASSERT_TRUE(e.ok());
    router.OnFailure("m0", *e, i);
  }
  EXPECT_FALSE(router.endpoint_state(0).breaker_open);
  EXPECT_EQ(router.stats().breaker_opens, 0);
  EXPECT_EQ(router.breaker_opens(), 0u);
}

TEST(FnPackerBreakerTest, OpensAfterConsecutiveFailuresAndRoutesAround) {
  FnPackerRouter router(BreakerPoolOf({"m0"}, 2, /*threshold=*/2));
  auto first = router.Route("m0", 0);
  ASSERT_TRUE(first.ok());
  router.OnFailure("m0", *first, 1);
  EXPECT_FALSE(router.endpoint_state(*first).breaker_open);  // 1 < threshold

  auto again = router.Route("m0", 2);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *first);  // still preferred while closed
  router.OnFailure("m0", *again, 3);

  EXPECT_TRUE(router.endpoint_state(*first).breaker_open);
  EXPECT_EQ(router.stats().breaker_opens, 1);
  EXPECT_EQ(router.breaker_opens(), 1u);
  EXPECT_EQ(router.endpoint_state(*first).breaker_failures, 2);

  // The open endpoint is skipped: traffic lands on the replica.
  auto rerouted = router.Route("m0", 4);
  ASSERT_TRUE(rerouted.ok());
  EXPECT_NE(*rerouted, *first);

  // A success resets the replica's failure streak.
  router.OnComplete("m0", *rerouted, 5);
  EXPECT_EQ(router.endpoint_state(*rerouted).breaker_failures, 0);
}

TEST(FnPackerBreakerTest, AllEndpointsOpenShedsWithTypedUnavailable) {
  FnPackerRouter router(BreakerPoolOf({"m0"}, 2, /*threshold=*/1));
  for (int round = 0; round < 2; ++round) {
    auto e = router.Route("m0", round);
    ASSERT_TRUE(e.ok());
    router.OnFailure("m0", *e, round);
  }
  EXPECT_TRUE(router.endpoint_state(0).breaker_open);
  EXPECT_TRUE(router.endpoint_state(1).breaker_open);

  // Inside the open interval every endpoint rejects: typed shed, no endpoint.
  auto shed = router.Route("m0", 10);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(router.stats().breaker_rejections, 1);
}

TEST(FnPackerBreakerTest, HalfOpenProbeClosesOnSuccess) {
  FnPoolSpec spec = BreakerPoolOf({"m0"}, 1, /*threshold=*/1);
  spec.breaker_open_interval = 1000;
  FnPackerRouter router(spec);

  auto e = router.Route("m0", 0);
  ASSERT_TRUE(e.ok());
  router.OnFailure("m0", *e, 0);  // opens until t=1000
  ASSERT_TRUE(router.endpoint_state(0).breaker_open);
  EXPECT_FALSE(router.Route("m0", 500).ok());  // still open

  // Past the interval one probe is admitted; its success closes the breaker.
  auto probe = router.Route("m0", 2000);
  ASSERT_TRUE(probe.ok());
  router.OnComplete("m0", *probe, 2001);
  EXPECT_FALSE(router.endpoint_state(0).breaker_open);
  EXPECT_EQ(router.endpoint_state(0).breaker_failures, 0);
  EXPECT_TRUE(router.Route("m0", 2002).ok());  // normal service resumed
  EXPECT_EQ(router.stats().breaker_opens, 1);
}

TEST(FnPackerBreakerTest, HalfOpenProbeFailureReopens) {
  FnPoolSpec spec = BreakerPoolOf({"m0"}, 1, /*threshold=*/1);
  spec.breaker_open_interval = 1000;
  FnPackerRouter router(spec);

  auto e = router.Route("m0", 0);
  ASSERT_TRUE(e.ok());
  router.OnFailure("m0", *e, 0);

  auto probe = router.Route("m0", 2000);  // half-open probe admitted
  ASSERT_TRUE(probe.ok());
  router.OnFailure("m0", *probe, 2001);  // probe failed: reopen immediately

  EXPECT_TRUE(router.endpoint_state(0).breaker_open);
  EXPECT_EQ(router.stats().breaker_opens, 2);
  EXPECT_FALSE(router.Route("m0", 2500).ok());  // new open interval running
}

TEST(FnPackerBreakerTest, HalfOpenAdmitsConfiguredProbeBudget) {
  FnPoolSpec spec = BreakerPoolOf({"m0"}, 1, /*threshold=*/1, /*probes=*/2);
  spec.breaker_open_interval = 1000;
  FnPackerRouter router(spec);

  auto e = router.Route("m0", 0);
  ASSERT_TRUE(e.ok());
  router.OnFailure("m0", *e, 0);

  // Two probes pass (distinct Route calls), the third is rejected while the
  // probe outcomes are still pending.
  EXPECT_TRUE(router.Route("m0", 2000).ok());
  EXPECT_TRUE(router.Route("m0", 2001).ok());
  EXPECT_FALSE(router.Route("m0", 2002).ok());
}

}  // namespace
}  // namespace sesemi::fnpacker
