// Latency-class isolation regression tests: with the bulk classes saturated,
// interactive requests must (a) execute exclusively on RT lane threads —
// never on a shared-pool worker (thread-identity assertion via
// InvocationResult::exec_thread / rt_lane), and (b) keep a p99 latency far
// below the saturated bulk path (the documented 0.5x bound, see
// docs/ARCHITECTURE.md "Execution tiers"). Also covers the RT-disabled
// identity (zeroed stats, rt_lane == -1) and pause/resume across the tier.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <set>
#include <thread>
#include <vector>

#include "client/clients.h"
#include "model/zoo.h"
#include "serverless/platform.h"

namespace sesemi::serverless {
namespace {

using client::KeyServiceClient;
using client::ModelOwner;
using client::ModelUser;

class RtIsolationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto server = keyservice::StartKeyService(&ks_platform_);
    ASSERT_TRUE(server.ok());
    keyservice_ = std::move(*server);
    auto ks_client = KeyServiceClient::Connect(
        keyservice_.get(), &authority_,
        keyservice::KeyServiceEnclave::ExpectedMeasurement());
    ASSERT_TRUE(ks_client.ok());
    client_ = std::move(*ks_client);

    owner_ = std::make_unique<ModelOwner>("owner");
    user_ = std::make_unique<ModelUser>("user");
    ASSERT_TRUE(owner_->Register(client_.get()).ok());
    ASSERT_TRUE(user_->Register(client_.get()).ok());

    // Two models, mirroring the workload shape the tier targets: a heavy
    // bulk model whose burst genuinely saturates the shared pool (the Dense
    // layers dominate at scale 0.05, as in bench_sched's overhead section),
    // and a light interactive model whose single-threaded lane execution is
    // cheap.
    model::ZooSpec heavy;
    heavy.model_id = "m0";
    heavy.scale = 0.05;
    heavy.input_hw = 16;
    auto heavy_graph = model::BuildModel(heavy);
    ASSERT_TRUE(heavy_graph.ok());
    heavy_graph_ = *heavy_graph;
    ASSERT_TRUE(owner_->DeployModel(client_.get(), &storage_, *heavy_graph).ok());

    model::ZooSpec light;
    light.model_id = "m1";
    light.scale = 0.002;
    light.input_hw = 16;
    auto light_graph = model::BuildModel(light);
    ASSERT_TRUE(light_graph.ok());
    light_graph_ = *light_graph;
    ASSERT_TRUE(owner_->DeployModel(client_.get(), &storage_, *light_graph).ok());
  }

  // A real-clock platform (queue_wait and latencies are wall time).
  void BuildPlatform(bool rt_enabled) {
    PlatformConfig config;
    config.num_nodes = 2;
    if (rt_enabled) {
      config.rt.enabled = true;
      config.rt.classes = 1;  // class 0 = interactive
      config.rt.executor.num_lanes = 1;
      // Request the privileged knobs; where the container lacks
      // CAP_SYS_NICE this exercises the EPERM fallback instead.
      config.rt.executor.pin_threads = true;
      config.rt.executor.elevate_priority = true;
    }
    platform_ = std::make_unique<ServerlessPlatform>(config, &authority_,
                                                     &storage_, keyservice_.get());
  }

  void Deploy(const std::string& fn_name, int priority, int max_batch = 1) {
    FunctionSpec spec;
    spec.name = fn_name;
    spec.sched.priority = priority;
    spec.sched.max_batch = max_batch;
    ASSERT_TRUE(platform_->DeployFunction(spec).ok());
    sgx::Measurement es = semirt::SemirtInstance::MeasurementFor({});
    if (!granted_) {
      for (const char* model : {"m0", "m1"}) {
        ASSERT_TRUE(
            owner_->GrantAccess(client_.get(), model, es, user_->id()).ok());
        ASSERT_TRUE(user_->ProvisionRequestKey(client_.get(), model, es).ok());
      }
      granted_ = true;
    }
  }

  std::future<InvocationResult> Fire(const std::string& fn,
                                     const std::string& model = "m1") {
    const model::ModelGraph& graph =
        model == "m0" ? heavy_graph_ : light_graph_;
    Bytes input = model::GenerateRandomInput(graph, 1);
    auto request = user_->BuildRequest(model, input);
    EXPECT_TRUE(request.ok());
    return platform_->InvokeAsync(fn, std::move(*request));
  }

  sgx::AttestationAuthority authority_;
  sgx::SgxPlatform ks_platform_{sgx::SgxGeneration::kSgx2, &authority_};
  std::unique_ptr<keyservice::KeyServiceServer> keyservice_;
  std::unique_ptr<KeyServiceClient> client_;
  std::unique_ptr<ModelOwner> owner_;
  std::unique_ptr<ModelUser> user_;
  storage::InMemoryObjectStore storage_;
  model::ModelGraph heavy_graph_;
  model::ModelGraph light_graph_;
  bool granted_ = false;
  std::unique_ptr<ServerlessPlatform> platform_;
};

int64_t PercentileUs(std::vector<int64_t> samples, double pct) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const double rank =
      pct / 100.0 * static_cast<double>(samples.size() - 1);
  return samples[static_cast<size_t>(rank + 0.5)];
}

TEST_F(RtIsolationTest, InteractiveNeverExecutesOnBulkPoolUnderSaturation) {
  BuildPlatform(/*rt_enabled=*/true);
  Deploy("bulk", /*priority=*/1, /*max_batch=*/4);
  Deploy("interactive", /*priority=*/0);

  // Deep bulk backlog: its e2e p99 must dwarf any lane scheduling jitter so
  // the 0.5x ratio assertion has headroom on noisy unpinned CI runners.
  constexpr int kBulk = 96;
  constexpr int kInteractive = 16;

  // Warm both paths so the measured phase compares steady-state latency,
  // not cold-start amortization.
  ASSERT_TRUE(Fire("bulk", "m0").get().response.ok());
  ASSERT_TRUE(Fire("interactive").get().response.ok());

  // Saturate the bulk class first, then trickle interactive requests in
  // while the shared pool is busy chewing through the backlog.
  const auto bulk_start = std::chrono::steady_clock::now();
  std::vector<std::future<InvocationResult>> bulk;
  bulk.reserve(kBulk);
  for (int i = 0; i < kBulk; ++i) bulk.push_back(Fire("bulk", "m0"));

  std::vector<int64_t> interactive_us;
  std::vector<InvocationResult> interactive;
  interactive.reserve(kInteractive);
  for (int i = 0; i < kInteractive; ++i) {
    const auto start = std::chrono::steady_clock::now();
    InvocationResult r = Fire("interactive").get();
    interactive_us.push_back(std::chrono::duration_cast<std::chrono::microseconds>(
                                 std::chrono::steady_clock::now() - start)
                                 .count());
    interactive.push_back(std::move(r));
  }

  std::set<uint64_t> bulk_threads;
  std::vector<int64_t> bulk_e2e_us;
  for (auto& f : bulk) {
    InvocationResult r = f.get();
    // All bulk futures were fired within microseconds of bulk_start, so
    // completion offset ~= this request's end-to-end queue+exec time.
    bulk_e2e_us.push_back(std::chrono::duration_cast<std::chrono::microseconds>(
                              std::chrono::steady_clock::now() - bulk_start)
                              .count());
    ASSERT_TRUE(r.response.ok()) << r.response.status().ToString();
    EXPECT_EQ(r.rt_lane, -1);
    bulk_threads.insert(r.exec_thread);
  }

  for (const InvocationResult& r : interactive) {
    ASSERT_TRUE(r.response.ok()) << r.response.status().ToString();
    // The core isolation contract: executed on an RT lane, on a thread the
    // bulk path never used.
    EXPECT_GE(r.rt_lane, 0);
    EXPECT_EQ(bulk_threads.count(r.exec_thread), 0u)
        << "interactive request executed on a bulk pool worker";
  }

  const RtTierStats rt = platform_->rt_stats();
  EXPECT_TRUE(rt.enabled);
  EXPECT_EQ(rt.lanes, 1);
  EXPECT_GE(rt.dispatches, static_cast<uint64_t>(kInteractive));

  // Documented bound: under bulk saturation, interactive p99 (queue + exec)
  // stays within 0.5x of the saturated bulk end-to-end p99. The margin in
  // practice is much larger — 0.5x (with a small floor for fast machines)
  // keeps the assertion robust on noisy CI runners.
  const int64_t interactive_p99 = PercentileUs(interactive_us, 99.0);
  const int64_t bulk_e2e_p99 = PercentileUs(bulk_e2e_us, 99.0);
  EXPECT_LE(interactive_p99, std::max<int64_t>(bulk_e2e_p99 / 2, 2000))
      << "interactive p99 " << interactive_p99 << "us vs bulk e2e p99 "
      << bulk_e2e_p99 << "us";
}

TEST_F(RtIsolationTest, RtDisabledKeepsSharedPathAndZeroStats) {
  BuildPlatform(/*rt_enabled=*/false);
  Deploy("interactive", /*priority=*/0);

  InvocationResult r = Fire("interactive").get();
  ASSERT_TRUE(r.response.ok()) << r.response.status().ToString();
  EXPECT_EQ(r.rt_lane, -1);

  const RtTierStats rt = platform_->rt_stats();
  EXPECT_FALSE(rt.enabled);
  EXPECT_EQ(rt.lanes, 0);
  EXPECT_EQ(rt.dispatches, 0u);
  EXPECT_EQ(rt.fallbacks, 0u);
}

TEST_F(RtIsolationTest, PauseParksRtClassesAndResumeDrainsThem) {
  BuildPlatform(/*rt_enabled=*/true);
  Deploy("interactive", /*priority=*/0);

  platform_->PauseDispatch();
  std::vector<std::future<InvocationResult>> inflight;
  for (int i = 0; i < 4; ++i) inflight.push_back(Fire("interactive"));

  // Paused: nothing may dispatch, on either tier.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(platform_->rt_stats().dispatches, 0u);
  EXPECT_EQ(platform_->rt_stats().interactive_depth, 4u);

  platform_->ResumeDispatch();
  for (auto& f : inflight) {
    InvocationResult r = f.get();
    ASSERT_TRUE(r.response.ok()) << r.response.status().ToString();
    EXPECT_GE(r.rt_lane, 0);
  }
  EXPECT_EQ(platform_->rt_stats().interactive_depth, 0u);
}

TEST_F(RtIsolationTest, ShutdownWithParkedRtBacklogResolvesEveryFuture) {
  BuildPlatform(/*rt_enabled=*/true);
  Deploy("interactive", /*priority=*/0);

  platform_->PauseDispatch();
  std::vector<std::future<InvocationResult>> inflight;
  for (int i = 0; i < 8; ++i) inflight.push_back(Fire("interactive"));
  platform_.reset();  // destructor drains: every future must resolve, typed

  for (auto& f : inflight) {
    InvocationResult r = f.get();  // must not hang
    // Either executed during the drain or typed-rejected; never abandoned.
    if (!r.response.ok()) {
      EXPECT_TRUE(r.response.status().IsUnavailable() ||
                  r.response.status().code() == StatusCode::kDeadlineExceeded)
          << r.response.status().ToString();
    }
  }
}

}  // namespace
}  // namespace sesemi::serverless
