#include <gtest/gtest.h>

#include "client/clients.h"
#include "crypto/key.h"
#include "keyservice/keyservice.h"
#include "model/zoo.h"
#include "semirt/semirt.h"
#include "sgx/platform.h"
#include "storage/object_store.h"

namespace sesemi::keyservice {
namespace {

using client::KeyServiceClient;
using client::ModelOwner;
using client::ModelUser;

class KeyServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto server = StartKeyService(&platform_);
    ASSERT_TRUE(server.ok());
    server_ = std::move(*server);
    auto ks_client = KeyServiceClient::Connect(
        server_.get(), &authority_, KeyServiceEnclave::ExpectedMeasurement());
    ASSERT_TRUE(ks_client.ok()) << ks_client.status().ToString();
    client_ = std::move(*ks_client);
  }

  sgx::Measurement SomeEnclaveIdentity() {
    semirt::SemirtOptions options;
    return semirt::SemirtInstance::MeasurementFor(options);
  }

  sgx::AttestationAuthority authority_;
  sgx::SgxPlatform platform_{sgx::SgxGeneration::kSgx2, &authority_};
  std::unique_ptr<KeyServiceServer> server_;
  std::unique_ptr<KeyServiceClient> client_;
  storage::InMemoryObjectStore storage_;
};

TEST_F(KeyServiceTest, ExpectedMeasurementIsDerivable) {
  // E_K must be a fixed, independently derivable constant.
  EXPECT_EQ(KeyServiceEnclave::ExpectedMeasurement(),
            KeyServiceEnclave::ExpectedMeasurement());
  EXPECT_EQ(server_->service()->enclave()->mrenclave(),
            KeyServiceEnclave::ExpectedMeasurement());
}

TEST_F(KeyServiceTest, RegistrationDerivesShaIdentity) {
  ModelOwner owner("hospital");
  ASSERT_TRUE(owner.Register(client_.get()).ok());
  EXPECT_EQ(owner.id().size(), 64u);
  EXPECT_EQ(server_->service()->registered_identities(), 1u);

  // Registration is idempotent for the same key.
  ASSERT_TRUE(owner.Register(client_.get()).ok());
  EXPECT_EQ(server_->service()->registered_identities(), 1u);
}

TEST_F(KeyServiceTest, FullKeySetupWorkflow) {
  ModelOwner owner("hospital");
  ModelUser user("patient");
  ASSERT_TRUE(owner.Register(client_.get()).ok());
  ASSERT_TRUE(user.Register(client_.get()).ok());

  model::ZooSpec spec;
  spec.model_id = "diag-model";
  spec.scale = 0.002;
  spec.input_hw = 16;
  auto graph = model::BuildModel(spec);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(owner.DeployModel(client_.get(), &storage_, *graph).ok());
  EXPECT_EQ(server_->service()->stored_model_keys(), 1u);
  EXPECT_TRUE(storage_.Exists("models/diag-model"));

  sgx::Measurement es = SomeEnclaveIdentity();
  ASSERT_TRUE(owner.GrantAccess(client_.get(), "diag-model", es, user.id()).ok());
  ASSERT_TRUE(user.ProvisionRequestKey(client_.get(), "diag-model", es).ok());
  EXPECT_EQ(server_->service()->access_control_entries(), 1u);
  EXPECT_EQ(server_->service()->stored_request_keys(), 1u);
}

TEST_F(KeyServiceTest, KeyProvisioningRequiresBothAuthorizations) {
  ModelOwner owner("o");
  ModelUser user("u");
  ASSERT_TRUE(owner.Register(client_.get()).ok());
  ASSERT_TRUE(user.Register(client_.get()).ok());
  model::ZooSpec spec;
  spec.model_id = "m0";
  spec.scale = 0.002;
  spec.input_hw = 16;
  auto graph = model::BuildModel(spec);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(owner.DeployModel(client_.get(), &storage_, *graph).ok());
  sgx::Measurement es = SomeEnclaveIdentity();

  // Neither grant nor request key yet.
  auto r = server_->service()->KeyProvisioning(user.id(), "m0", es);
  EXPECT_TRUE(r.status().IsPermissionDenied());

  // Only the owner's grant: still denied (user key missing).
  ASSERT_TRUE(owner.GrantAccess(client_.get(), "m0", es, user.id()).ok());
  r = server_->service()->KeyProvisioning(user.id(), "m0", es);
  EXPECT_TRUE(r.status().IsPermissionDenied());

  // Both present: succeeds and returns both keys.
  ASSERT_TRUE(user.ProvisionRequestKey(client_.get(), "m0", es).ok());
  r = server_->service()->KeyProvisioning(user.id(), "m0", es);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->first, *owner.ModelKey("m0"));
  EXPECT_FALSE(r->second.empty());
}

TEST_F(KeyServiceTest, WrongEnclaveIdentityDenied) {
  ModelOwner owner("o");
  ModelUser user("u");
  ASSERT_TRUE(owner.Register(client_.get()).ok());
  ASSERT_TRUE(user.Register(client_.get()).ok());
  model::ZooSpec spec;
  spec.model_id = "m0";
  spec.scale = 0.002;
  spec.input_hw = 16;
  auto graph = model::BuildModel(spec);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(owner.DeployModel(client_.get(), &storage_, *graph).ok());

  sgx::Measurement authorized = SomeEnclaveIdentity();
  ASSERT_TRUE(owner.GrantAccess(client_.get(), "m0", authorized, user.id()).ok());
  ASSERT_TRUE(user.ProvisionRequestKey(client_.get(), "m0", authorized).ok());

  // An enclave with different code/config (e.g. the attacker's) is denied.
  semirt::SemirtOptions other;
  other.num_tcs = 4;
  sgx::Measurement attacker = semirt::SemirtInstance::MeasurementFor(other);
  ASSERT_NE(attacker, authorized);
  auto r = server_->service()->KeyProvisioning(user.id(), "m0", attacker);
  EXPECT_TRUE(r.status().IsPermissionDenied());
}

TEST_F(KeyServiceTest, UnauthorizedUserDenied) {
  ModelOwner owner("o");
  ModelUser alice("alice"), mallory("mallory");
  ASSERT_TRUE(owner.Register(client_.get()).ok());
  ASSERT_TRUE(alice.Register(client_.get()).ok());
  ASSERT_TRUE(mallory.Register(client_.get()).ok());
  model::ZooSpec spec;
  spec.model_id = "m0";
  spec.scale = 0.002;
  spec.input_hw = 16;
  auto graph = model::BuildModel(spec);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(owner.DeployModel(client_.get(), &storage_, *graph).ok());
  sgx::Measurement es = SomeEnclaveIdentity();
  ASSERT_TRUE(owner.GrantAccess(client_.get(), "m0", es, alice.id()).ok());
  ASSERT_TRUE(alice.ProvisionRequestKey(client_.get(), "m0", es).ok());

  // Mallory adds her own request key but was never granted access.
  ASSERT_TRUE(mallory.ProvisionRequestKey(client_.get(), "m0", es).ok());
  auto r = server_->service()->KeyProvisioning(mallory.id(), "m0", es);
  EXPECT_TRUE(r.status().IsPermissionDenied());
}

TEST_F(KeyServiceTest, OnlyOwnerCanGrantAccess) {
  ModelOwner owner("o"), impostor("impostor");
  ModelUser user("u");
  ASSERT_TRUE(owner.Register(client_.get()).ok());
  ASSERT_TRUE(impostor.Register(client_.get()).ok());
  ASSERT_TRUE(user.Register(client_.get()).ok());
  model::ZooSpec spec;
  spec.model_id = "m0";
  spec.scale = 0.002;
  spec.input_hw = 16;
  auto graph = model::BuildModel(spec);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(owner.DeployModel(client_.get(), &storage_, *graph).ok());

  auto s = impostor.GrantAccess(client_.get(), "m0", SomeEnclaveIdentity(), user.id());
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsPermissionDenied() || s.IsNotFound());
}

TEST_F(KeyServiceTest, ModelIdCannotBeHijackedByAnotherOwner) {
  ModelOwner owner("o"), hijacker("h");
  ASSERT_TRUE(owner.Register(client_.get()).ok());
  ASSERT_TRUE(hijacker.Register(client_.get()).ok());
  model::ZooSpec spec;
  spec.model_id = "m0";
  spec.scale = 0.002;
  spec.input_hw = 16;
  auto graph = model::BuildModel(spec);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(owner.DeployModel(client_.get(), &storage_, *graph).ok());
  auto s = hijacker.DeployModel(client_.get(), &storage_, *graph);
  EXPECT_TRUE(s.IsPermissionDenied());
}

TEST_F(KeyServiceTest, UnregisteredCallerRejected) {
  ModelOwner ghost("ghost");  // never registered
  model::ZooSpec spec;
  spec.model_id = "m0";
  spec.scale = 0.002;
  spec.input_hw = 16;
  auto graph = model::BuildModel(spec);
  ASSERT_TRUE(graph.ok());
  auto s = ghost.DeployModel(client_.get(), &storage_, *graph);
  EXPECT_FALSE(s.ok());
}

TEST_F(KeyServiceTest, ForgedPayloadRejected) {
  // A payload sealed under the wrong identity key must not decrypt.
  ModelOwner owner("o");
  ASSERT_TRUE(owner.Register(client_.get()).ok());
  Bytes attacker_key = crypto::GenerateSymmetricKey(32);
  auto payload = SealAddModelKey(attacker_key, "m0", crypto::GenerateSymmetricKey());
  ASSERT_TRUE(payload.ok());
  auto r = client_->Call(OpCode::kAddModelKey, owner.id(), *payload);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(server_->service()->stored_model_keys(), 0u);
}

TEST_F(KeyServiceTest, PayloadCannotCrossOperations) {
  // A sealed ADD_MODEL_KEY blob replayed as GRANT_ACCESS fails (AAD binding).
  ModelOwner owner("o");
  ASSERT_TRUE(owner.Register(client_.get()).ok());
  // Seal with the *owner's* real workflow, then replay cross-op via raw call.
  model::ZooSpec spec;
  spec.model_id = "m0";
  spec.scale = 0.002;
  spec.input_hw = 16;
  auto graph = model::BuildModel(spec);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(owner.DeployModel(client_.get(), &storage_, *graph).ok());
  auto sealed = storage_.Get("models/m0");  // any bytes; build a real payload:
  ASSERT_TRUE(sealed.ok());
  // Rebuild a legitimate AddModelKey payload and replay it as GrantAccess.
  // (We can't reconstruct the exact original, but a fresh one sealed under
  // the same AAD rules demonstrates the cross-op rejection.)
  Bytes identity_key = crypto::GenerateSymmetricKey(32);
  ModelOwner owner2("o2");
  ASSERT_TRUE(owner2.Register(client_.get()).ok());
  (void)identity_key;
  auto payload = SealAddModelKey(Bytes(32, 1), "mX", crypto::GenerateSymmetricKey());
  ASSERT_TRUE(payload.ok());
  auto r = client_->Call(OpCode::kGrantAccess, owner2.id(), *payload);
  EXPECT_FALSE(r.ok());
}

TEST_F(KeyServiceTest, KeyProvisioningOverClientSessionDenied) {
  // KEY_PROVISIONING must only work on mutually attested sessions; a plain
  // client session (no enclave quote) is refused even with valid arguments.
  ModelUser user("u");
  ASSERT_TRUE(user.Register(client_.get()).ok());
  auto r = client_->Call(OpCode::kKeyProvisioning, user.id(),
                         BuildKeyProvisioningPayload(user.id(), "m0"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsPermissionDenied());
}

TEST_F(KeyServiceTest, SessionsAreTracked) {
  EXPECT_EQ(server_->active_sessions(), 1u);  // fixture client
  {
    auto extra = KeyServiceClient::Connect(server_.get(), &authority_,
                                           KeyServiceEnclave::ExpectedMeasurement());
    ASSERT_TRUE(extra.ok());
    EXPECT_EQ(server_->active_sessions(), 2u);
  }
  EXPECT_EQ(server_->active_sessions(), 1u);  // destructor disconnects
}

TEST_F(KeyServiceTest, HandleRejectsUnknownSessionAndGarbage) {
  EXPECT_FALSE(server_->Handle(9999, Bytes(32, 0)).ok());
  EXPECT_FALSE(server_->Handle(1, Bytes(3, 0)).ok());  // not a valid record
}

}  // namespace
}  // namespace sesemi::keyservice
