#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/parallel_for.h"

namespace sesemi {
namespace {

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  constexpr int64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(0, kN, 64, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (int64_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, EmptyAndTinyRanges) {
  int calls = 0;
  ParallelFor(5, 5, 1, [&](int64_t, int64_t) { calls++; });
  EXPECT_EQ(calls, 0);

  std::atomic<int64_t> sum{0};
  ParallelFor(0, 3, 100, [&](int64_t begin, int64_t end) {
    sum.fetch_add(end - begin);
  });
  EXPECT_EQ(sum.load(), 3);
}

TEST(ParallelForTest, NestedCallsRunInline) {
  std::atomic<int64_t> total{0};
  ParallelFor(0, 16, 1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      // Nested ParallelFor must not deadlock; it degrades to a plain loop.
      ParallelFor(0, 8, 1, [&](int64_t b, int64_t e) {
        total.fetch_add(e - b);
      });
    }
  });
  EXPECT_EQ(total.load(), 16 * 8);
}

TEST(ParallelForTest, ConcurrentCallersFromManyThreads) {
  constexpr int kThreads = 8;
  constexpr int64_t kN = 2000;
  std::atomic<int64_t> total{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 10; ++round) {
        ParallelFor(0, kN, 32, [&](int64_t begin, int64_t end) {
          total.fetch_add(end - begin);
        });
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(total.load(), static_cast<int64_t>(kThreads) * 10 * kN);
}

TEST(TaskGroupTest, RunsEveryTaskExactlyOnce) {
  constexpr int kTasks = 200;
  std::vector<std::atomic<int>> runs(kTasks);
  TaskGroup group;
  for (int i = 0; i < kTasks; ++i) {
    group.Submit([&runs, i] { runs[i].fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(group.pending(), 0);
  for (int i = 0; i < kTasks; ++i) EXPECT_EQ(runs[i].load(), 1) << i;
}

TEST(TaskGroupTest, WaitIsIdempotentAndReusable) {
  TaskGroup group;
  group.Wait();  // nothing submitted
  std::atomic<int> runs{0};
  group.Submit([&] { runs.fetch_add(1); });
  group.Wait();
  group.Wait();
  EXPECT_EQ(runs.load(), 1);
  // The group is reusable after a Wait.
  group.Submit([&] { runs.fetch_add(1); });
  group.Wait();
  EXPECT_EQ(runs.load(), 2);
}

TEST(TaskGroupTest, TasksMayCallParallelFor) {
  constexpr int kTasks = 16;
  constexpr int64_t kN = 512;
  std::atomic<int64_t> total{0};
  TaskGroup group;
  for (int i = 0; i < kTasks; ++i) {
    group.Submit([&] {
      ParallelFor(0, kN, 16, [&](int64_t begin, int64_t end) {
        total.fetch_add(end - begin);
      });
    });
  }
  group.Wait();
  EXPECT_EQ(total.load(), static_cast<int64_t>(kTasks) * kN);
}

TEST(TaskGroupTest, NestedSubmissionFromInsideTasks) {
  std::atomic<int> runs{0};
  TaskGroup group;
  for (int i = 0; i < 8; ++i) {
    group.Submit([&] {
      runs.fetch_add(1);
      group.Submit([&] { runs.fetch_add(1); });
    });
  }
  group.Wait();
  EXPECT_EQ(runs.load(), 16);
}

TEST(TaskGroupTest, ConcurrentSubmittersAndWaiters) {
  std::atomic<int> runs{0};
  TaskGroup group;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        group.Submit([&] { runs.fetch_add(1); });
      }
      group.Wait();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(runs.load(), 200);
}

TEST(ParallelForTest, DegreeIsAtLeastOne) {
  EXPECT_GE(ParallelismDegree(), 1);
}

TEST(ParallelForTest, RealtimeTierRunsInline) {
  // A thread marked kRealtime must never fan into the shared pool: the RT
  // lanes exist to bypass it (see common/executor.h).
  ScopedExecTier tier(ExecTier::kRealtime);
  std::set<std::thread::id> threads;
  ParallelFor(0, 100000, 1, [&threads](int64_t, int64_t) {
    threads.insert(std::this_thread::get_id());
  });
  EXPECT_EQ(threads.size(), 1u);
  EXPECT_EQ(*threads.begin(), std::this_thread::get_id());
}

TEST(ParallelForTest, BulkHelperLimitBoundsWorkersPerJob) {
  if (ParallelismDegree() < 3) GTEST_SKIP() << "needs a multi-core pool";
  ASSERT_EQ(BulkHelperLimit(), 0);
  SetBulkHelperLimit(1);

  // With the clamp at 1 only the caller may drain the job; pool workers must
  // skip it. Track distinct participating threads over a long-enough run
  // that unclamped workers would certainly join (they do in the unclamped
  // sibling tests above).
  std::mutex mutex;
  std::set<std::thread::id> threads;
  ParallelFor(0, 20000, 1, [&](int64_t, int64_t) {
    std::lock_guard<std::mutex> lock(mutex);
    threads.insert(std::this_thread::get_id());
  });
  SetBulkHelperLimit(0);
  EXPECT_LE(threads.size(), 1u);

  // Clamp removed: parallelism is available again.
  std::set<std::thread::id> after;
  ParallelFor(0, 200000, 1, [&](int64_t, int64_t) {
    std::lock_guard<std::mutex> lock(mutex);
    after.insert(std::this_thread::get_id());
  });
  EXPECT_GE(after.size(), 1u);
}

}  // namespace
}  // namespace sesemi
