#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "inference/compiled_model.h"
#include "inference/framework.h"
#include "inference/ops.h"
#include "model/format.h"
#include "model/zoo.h"

namespace sesemi::inference {
namespace {

using model::Architecture;
using model::ModelGraph;
using model::TensorShape;
using model::ZooSpec;

ZooSpec SmallSpec(Architecture arch) {
  ZooSpec spec;
  spec.arch = arch;
  spec.scale = 0.002;
  spec.input_hw = 16;
  return spec;
}

// ---------------------------------------------------------------- ops

TEST(OpsTest, Conv2dIdentityKernel) {
  // 1x1 kernel with identity weights and zero bias copies channels.
  TensorShape in_shape{2, 2, 2};
  std::vector<float> in = {1, 2, 3, 4, 5, 6, 7, 8};
  // w[0][0][ic][oc]: identity 2x2, bias 0,0.
  std::vector<float> w = {1, 0, 0, 1, 0, 0};
  std::vector<float> out(8);
  ops::Conv2d(in.data(), in_shape, w.data(), 1, 1, 2, out.data());
  EXPECT_EQ(out, in);
}

TEST(OpsTest, Conv2dBiasOnly) {
  TensorShape in_shape{2, 2, 1};
  std::vector<float> in = {0, 0, 0, 0};
  std::vector<float> w = {0, 5.0f};  // zero weight, bias 5
  std::vector<float> out(4);
  ops::Conv2d(in.data(), in_shape, w.data(), 1, 1, 1, out.data());
  for (float v : out) EXPECT_FLOAT_EQ(v, 5.0f);
}

TEST(OpsTest, Conv2dSamePaddingSum) {
  // 3x3 all-ones kernel over a single-channel all-ones image computes the
  // number of valid neighbours at each position.
  TensorShape in_shape{3, 3, 1};
  std::vector<float> in(9, 1.0f);
  std::vector<float> w(10, 1.0f);
  w[9] = 0.0f;  // bias
  std::vector<float> out(9);
  ops::Conv2d(in.data(), in_shape, w.data(), 3, 1, 1, out.data());
  EXPECT_FLOAT_EQ(out[4], 9.0f);  // center sees all 9
  EXPECT_FLOAT_EQ(out[0], 4.0f);  // corner sees 4
  EXPECT_FLOAT_EQ(out[1], 6.0f);  // edge sees 6
}

TEST(OpsTest, Conv2dStrideTwoHalvesOutput) {
  TensorShape in_shape{4, 4, 1};
  std::vector<float> in(16, 1.0f);
  std::vector<float> w = {1, 0};  // 1x1 identity
  std::vector<float> out(4);
  ops::Conv2d(in.data(), in_shape, w.data(), 1, 2, 1, out.data());
  for (float v : out) EXPECT_FLOAT_EQ(v, 1.0f);
}

TEST(OpsTest, DepthwiseKeepsChannelsSeparate) {
  TensorShape in_shape{1, 1, 2};
  std::vector<float> in = {3, 5};
  // 1x1 depthwise: w[c] = {2, 10}, bias = {1, -1}.
  std::vector<float> w = {2, 10, 1, -1};
  std::vector<float> out(2);
  ops::DepthwiseConv2d(in.data(), in_shape, w.data(), 1, 1, out.data());
  EXPECT_FLOAT_EQ(out[0], 7.0f);
  EXPECT_FLOAT_EQ(out[1], 49.0f);
}

TEST(OpsTest, DenseMatchesManualComputation) {
  std::vector<float> in = {1, 2};
  // w[in][unit]: [[1,3],[2,4]], bias [10, 20].
  std::vector<float> w = {1, 3, 2, 4, 10, 20};
  std::vector<float> out(2);
  ops::Dense(in.data(), 2, w.data(), 2, out.data());
  EXPECT_FLOAT_EQ(out[0], 1 * 1 + 2 * 2 + 10);
  EXPECT_FLOAT_EQ(out[1], 1 * 3 + 2 * 4 + 20);
}

TEST(OpsTest, ReluClampsNegatives) {
  std::vector<float> in = {-1, 0, 2.5f};
  std::vector<float> out(3);
  ops::Relu(in.data(), 3, out.data());
  EXPECT_FLOAT_EQ(out[0], 0);
  EXPECT_FLOAT_EQ(out[1], 0);
  EXPECT_FLOAT_EQ(out[2], 2.5f);
}

TEST(OpsTest, MaxPoolPicksMaxAndHandlesOddEdges) {
  TensorShape in_shape{3, 3, 1};
  std::vector<float> in = {1, 2, 3, 4, 9, 6, 7, 8, 5};
  std::vector<float> out(4);
  ops::MaxPool2x2(in.data(), in_shape, out.data());
  EXPECT_FLOAT_EQ(out[0], 9);  // max(1,2,4,9)
  EXPECT_FLOAT_EQ(out[1], 6);  // max(3,6) — odd edge
  EXPECT_FLOAT_EQ(out[2], 8);  // max(7,8)
  EXPECT_FLOAT_EQ(out[3], 5);  // single corner
}

TEST(OpsTest, GlobalAvgPool) {
  TensorShape in_shape{2, 2, 2};
  std::vector<float> in = {1, 10, 2, 20, 3, 30, 4, 40};
  std::vector<float> out(2);
  ops::GlobalAvgPool(in.data(), in_shape, out.data());
  EXPECT_FLOAT_EQ(out[0], 2.5f);
  EXPECT_FLOAT_EQ(out[1], 25.0f);
}

TEST(OpsTest, AddAndConcat) {
  std::vector<float> a = {1, 2}, b = {10, 20};
  std::vector<float> sum(2);
  ops::Add(a.data(), b.data(), 2, sum.data());
  EXPECT_FLOAT_EQ(sum[0], 11);
  EXPECT_FLOAT_EQ(sum[1], 22);

  TensorShape sa{1, 1, 2}, sb{1, 1, 2};
  std::vector<float> cat(4);
  ops::ConcatChannels(a.data(), sa, b.data(), sb, cat.data());
  EXPECT_EQ(cat, (std::vector<float>{1, 2, 10, 20}));
}

TEST(OpsTest, SoftmaxSumsToOneAndOrdersCorrectly) {
  std::vector<float> in = {1, 3, 2};
  std::vector<float> out(3);
  ops::Softmax(in.data(), 3, out.data());
  EXPECT_NEAR(out[0] + out[1] + out[2], 1.0f, 1e-6);
  EXPECT_GT(out[1], out[2]);
  EXPECT_GT(out[2], out[0]);
}

TEST(OpsTest, SoftmaxStableForLargeLogits) {
  std::vector<float> in = {1000, 1001, 999};
  std::vector<float> out(3);
  ops::Softmax(in.data(), 3, out.data());
  EXPECT_FALSE(std::isnan(out[0]));
  EXPECT_NEAR(out[0] + out[1] + out[2], 1.0f, 1e-6);
}

// ------------------------------------------------- GEMM fast-path parity
// The im2col + blocked-GEMM kernels must reproduce the naive reference
// loops. Shapes sweep strides, kernel sizes, channel counts around the
// 16-wide/6-tall micro-tile edges, and non-multiples of both.

// Worst elementwise error, scaled: |a-b| / (1 + |a|), i.e. absolute for
// small magnitudes and relative for large ones (FMA in the GEMM kernels
// rounds differently from the naive mul+add chain).
float MaxScaledDiff(const std::vector<float>& a, const std::vector<float>& b) {
  float worst = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]) / (1.0f + std::abs(a[i])));
  }
  return worst;
}

std::vector<float> RandomVec(size_t n, uint32_t seed) {
  std::vector<float> v(n);
  uint32_t state = seed * 2654435761u + 1;
  for (size_t i = 0; i < n; ++i) {
    state = state * 1664525u + 1013904223u;
    v[i] = static_cast<float>(static_cast<int32_t>(state >> 8) % 2001 - 1000) / 500.0f;
  }
  return v;
}

struct ConvCase {
  int h, w, c, kernel, stride, out_c;
};

class ConvParityTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvParityTest, GemmMatchesNaive) {
  const ConvCase p = GetParam();
  TensorShape shape{p.h, p.w, p.c};
  const size_t w_count =
      static_cast<size_t>(p.kernel) * p.kernel * p.c * p.out_c + p.out_c;
  std::vector<float> in = RandomVec(shape.elements(), 11);
  std::vector<float> weights = RandomVec(w_count, 22);
  const int out_h = (p.h + p.stride - 1) / p.stride;
  const int out_w = (p.w + p.stride - 1) / p.stride;
  const size_t out_n = static_cast<size_t>(out_h) * out_w * p.out_c;

  std::vector<float> expect(out_n), got(out_n);
  ops::Conv2dNaive(in.data(), shape, weights.data(), p.kernel, p.stride, p.out_c,
                   expect.data());
  ops::Conv2d(in.data(), shape, weights.data(), p.kernel, p.stride, p.out_c,
              got.data());
  EXPECT_LE(MaxScaledDiff(expect, got), 1e-5f)
      << p.h << "x" << p.w << "x" << p.c << " k" << p.kernel << " s" << p.stride
      << " oc" << p.out_c;

  // The scratch-supplied overload (executor path) must agree too.
  std::vector<float> scratch(
      ops::Conv2dScratchElements(shape, p.kernel, p.stride));
  std::vector<float> got2(out_n);
  ops::Conv2d(in.data(), shape, weights.data(), p.kernel, p.stride, p.out_c,
              got2.data(), scratch.data());
  EXPECT_EQ(got, got2);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvParityTest,
    ::testing::Values(ConvCase{8, 8, 3, 3, 1, 8}, ConvCase{16, 16, 16, 3, 1, 32},
                      ConvCase{16, 16, 8, 3, 2, 16}, ConvCase{7, 9, 5, 3, 1, 17},
                      ConvCase{12, 12, 32, 1, 1, 16}, ConvCase{13, 13, 6, 1, 2, 7},
                      ConvCase{5, 5, 2, 5, 1, 3}, ConvCase{32, 32, 4, 3, 1, 6},
                      ConvCase{1, 1, 16, 3, 1, 16}, ConvCase{16, 16, 3, 3, 1, 1}));

TEST(GemmParityTest, DepthwiseMatchesNaiveAcrossShapes) {
  const struct {
    int h, w, c, kernel, stride;
  } cases[] = {{8, 8, 8, 3, 1},   {16, 16, 32, 3, 1}, {16, 16, 13, 3, 2},
               {7, 9, 5, 3, 1},   {12, 12, 64, 3, 2}, {5, 5, 3, 5, 1},
               {1, 1, 16, 3, 1},  {32, 32, 24, 3, 1}, {4, 4, 1, 1, 1},
               {30, 30, 96, 3, 1}};
  for (const auto& p : cases) {
    TensorShape shape{p.h, p.w, p.c};
    const size_t w_count = static_cast<size_t>(p.kernel) * p.kernel * p.c + p.c;
    std::vector<float> in = RandomVec(shape.elements(), 31);
    std::vector<float> weights = RandomVec(w_count, 32);
    const int out_h = (p.h + p.stride - 1) / p.stride;
    const int out_w = (p.w + p.stride - 1) / p.stride;
    const size_t out_n = static_cast<size_t>(out_h) * out_w * p.c;

    std::vector<float> expect(out_n), got(out_n);
    ops::DepthwiseConv2dNaive(in.data(), shape, weights.data(), p.kernel,
                              p.stride, expect.data());
    ops::DepthwiseConv2d(in.data(), shape, weights.data(), p.kernel, p.stride,
                         got.data());
    EXPECT_LE(MaxScaledDiff(expect, got), 1e-5f)
        << p.h << "x" << p.w << "x" << p.c << " k" << p.kernel << " s"
        << p.stride;
  }
}

TEST(GemmParityTest, DenseMatchesNaiveAcrossSizes) {
  const struct {
    size_t in_features;
    int units;
  } cases[] = {{1, 1},   {7, 5},    {16, 16},  {100, 10},
               {256, 64}, {300, 33}, {513, 17}, {64, 1000}};
  for (const auto& c : cases) {
    std::vector<float> in = RandomVec(c.in_features, 5);
    std::vector<float> weights =
        RandomVec(c.in_features * static_cast<size_t>(c.units) + c.units, 6);
    // Sprinkle zeros so the naive kernel's skip-zero shortcut is exercised.
    for (size_t i = 0; i < in.size(); i += 3) in[i] = 0.0f;
    std::vector<float> expect(c.units), got(c.units);
    ops::DenseNaive(in.data(), c.in_features, weights.data(), c.units,
                    expect.data());
    ops::Dense(in.data(), c.in_features, weights.data(), c.units, got.data());
    EXPECT_LE(MaxScaledDiff(expect, got), 1e-5f)
        << c.in_features << " -> " << c.units;
  }
}

TEST(GemmParityTest, CompiledArenaIncludesScratch) {
  // The compiled arena must be at least activations + the largest conv
  // scratch; a model with a 3x3 conv therefore reports a nonzero region.
  auto graph = model::BuildModel(SmallSpec(Architecture::kRsNet));
  ASSERT_TRUE(graph.ok());
  auto compiled = CompiledModel::Compile(*graph);
  ASSERT_TRUE(compiled.ok());
  EXPECT_GT(compiled->scratch_elements(), 0u);
  EXPECT_GE(compiled->arena_elements(), compiled->scratch_elements());
}

// ---------------------------------------------------------------- frameworks

class FrameworkTest
    : public ::testing::TestWithParam<std::tuple<FrameworkKind, Architecture>> {};

TEST_P(FrameworkTest, EndToEndInference) {
  auto [kind, arch] = GetParam();
  auto framework = CreateFramework(kind);
  auto graph = model::BuildModel(SmallSpec(arch));
  ASSERT_TRUE(graph.ok());
  Bytes wire = model::SerializeModel(*graph);

  auto loaded = framework->LoadModel(wire);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto runtime = framework->CreateRuntime(*loaded);
  ASSERT_TRUE(runtime.ok());

  Bytes input = model::GenerateRandomInput(*graph, 42);
  auto output = (*runtime)->Execute(input);
  ASSERT_TRUE(output.ok()) << output.status().ToString();

  auto scores = model::ParseOutput(*output);
  ASSERT_TRUE(scores.ok());
  ASSERT_EQ(scores->size(), 10u);
  float sum = std::accumulate(scores->begin(), scores->end(), 0.0f);
  EXPECT_NEAR(sum, 1.0f, 1e-4);  // softmax output
  for (float s : *scores) {
    EXPECT_GE(s, 0.0f);
    EXPECT_FALSE(std::isnan(s));
  }
}

TEST_P(FrameworkTest, BatchedExecutionMatchesPerSample) {
  // The scheduler's same-model batches run through ExecuteBatch (batch-major
  // arena, Dense layers as one M=batch GEMM); every sample's output must
  // match the unbatched path.
  auto [kind, arch] = GetParam();
  auto framework = CreateFramework(kind);
  auto graph = model::BuildModel(SmallSpec(arch));
  ASSERT_TRUE(graph.ok());
  auto loaded = framework->WrapModel(*graph);
  ASSERT_TRUE(loaded.ok());
  auto runtime = framework->CreateRuntime(*loaded);
  ASSERT_TRUE(runtime.ok());

  constexpr int kBatch = 5;
  std::vector<Bytes> inputs;
  for (int b = 0; b < kBatch; ++b) {
    inputs.push_back(model::GenerateRandomInput(*graph, 100 + b));
  }
  std::vector<ByteSpan> spans(inputs.begin(), inputs.end());
  auto batched = (*runtime)->ExecuteBatch(spans);
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();
  ASSERT_EQ(batched->size(), static_cast<size_t>(kBatch));

  for (int b = 0; b < kBatch; ++b) {
    auto single = (*runtime)->Execute(inputs[b]);
    ASSERT_TRUE(single.ok());
    auto want = model::ParseOutput(*single);
    auto got = model::ParseOutput((*batched)[b]);
    ASSERT_TRUE(want.ok() && got.ok());
    ASSERT_EQ(want->size(), got->size());
    for (size_t i = 0; i < want->size(); ++i) {
      EXPECT_NEAR((*want)[i], (*got)[i], 1e-5f) << "sample " << b << " idx " << i;
    }
  }
}

TEST_P(FrameworkTest, ExecutionIsDeterministic) {
  auto [kind, arch] = GetParam();
  auto framework = CreateFramework(kind);
  auto graph = model::BuildModel(SmallSpec(arch));
  ASSERT_TRUE(graph.ok());
  auto loaded = framework->WrapModel(*graph);
  ASSERT_TRUE(loaded.ok());
  auto rt1 = framework->CreateRuntime(*loaded);
  auto rt2 = framework->CreateRuntime(*loaded);
  ASSERT_TRUE(rt1.ok() && rt2.ok());
  Bytes input = model::GenerateRandomInput(*graph, 7);
  auto o1 = (*rt1)->Execute(input);
  auto o2 = (*rt2)->Execute(input);
  ASSERT_TRUE(o1.ok() && o2.ok());
  EXPECT_EQ(*o1, *o2);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, FrameworkTest,
    ::testing::Combine(::testing::Values(FrameworkKind::kTflm, FrameworkKind::kTvm),
                       ::testing::Values(Architecture::kMbNet, Architecture::kRsNet,
                                         Architecture::kDsNet)));

TEST(FrameworkContrastTest, BothFrameworksAgreeOnOutput) {
  // Same graph, same input — the two execution strategies must agree. TFLM
  // reads row-major weights in place, TVM the pre-packed panels; the ragged
  // panel edges round differently (same FMA-level tolerance as the naive
  // parity suite), so agreement is numeric, not bitwise.
  auto graph = model::BuildModel(SmallSpec(Architecture::kRsNet));
  ASSERT_TRUE(graph.ok());
  Bytes input = model::GenerateRandomInput(*graph, 3);

  auto tflm = CreateFramework(FrameworkKind::kTflm);
  auto tvm = CreateFramework(FrameworkKind::kTvm);
  auto lm1 = tflm->WrapModel(*graph);
  auto lm2 = tvm->WrapModel(*graph);
  ASSERT_TRUE(lm1.ok() && lm2.ok());
  auto r1 = tflm->CreateRuntime(*lm1);
  auto r2 = tvm->CreateRuntime(*lm2);
  ASSERT_TRUE(r1.ok() && r2.ok());
  auto o1 = (*r1)->Execute(input);
  auto o2 = (*r2)->Execute(input);
  ASSERT_TRUE(o1.ok() && o2.ok());
  auto s1 = model::ParseOutput(*o1);
  auto s2 = model::ParseOutput(*o2);
  ASSERT_TRUE(s1.ok() && s2.ok());
  ASSERT_EQ(s1->size(), s2->size());
  EXPECT_LE(MaxScaledDiff(*s1, *s2), 1e-5f);
}

TEST(FrameworkContrastTest, TvmPackedModelExceedsTflmModel) {
  // Table I, post-compile: TVM's MODEL_LOAD builds the packed artifact next
  // to the weights (λ_model > 1), TFLM reads weights in place (λ_model ≈ 1).
  // Runtimes on both sides hold only the activation arena — the packed copy
  // is shared, not duplicated per TCS slot.
  for (Architecture arch : {Architecture::kMbNet, Architecture::kRsNet,
                            Architecture::kDsNet}) {
    // Large enough that weights dominate activations, as with the real models.
    ZooSpec spec = SmallSpec(arch);
    spec.scale = 0.05;
    auto graph = model::BuildModel(spec);
    ASSERT_TRUE(graph.ok());
    auto tflm = CreateFramework(FrameworkKind::kTflm);
    auto tvm = CreateFramework(FrameworkKind::kTvm);
    auto lm_tflm = tflm->WrapModel(*graph);
    auto lm_tvm = tvm->WrapModel(*graph);
    ASSERT_TRUE(lm_tflm.ok() && lm_tvm.ok());
    auto rt_tflm = tflm->CreateRuntime(*lm_tflm);
    auto rt_tvm = tvm->CreateRuntime(*lm_tvm);
    ASSERT_TRUE(rt_tflm.ok() && rt_tvm.ok());

    uint64_t model_bytes = graph->WeightBytes();
    EXPECT_GT((*lm_tvm)->memory_bytes(), model_bytes)
        << ToString(arch) << ": TVM loaded model must carry the packed panels";
    EXPECT_GT((*lm_tvm)->memory_bytes(), (*lm_tflm)->memory_bytes())
        << ToString(arch) << ": packing must cost resident bytes vs in-place";
    EXPECT_LT((*rt_tflm)->buffer_bytes(), model_bytes)
        << ToString(arch) << ": TFLM arena must be smaller than the model";
    EXPECT_LT((*rt_tvm)->buffer_bytes(), model_bytes)
        << ToString(arch)
        << ": TVM per-runtime state is the arena only (packed copy is shared)";
  }
}

TEST(FrameworkTest, RejectsCrossFrameworkRuntime) {
  auto graph = model::BuildModel(SmallSpec(Architecture::kMbNet));
  ASSERT_TRUE(graph.ok());
  auto tflm = CreateFramework(FrameworkKind::kTflm);
  auto tvm = CreateFramework(FrameworkKind::kTvm);
  auto loaded = tflm->WrapModel(*graph);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(tvm->CreateRuntime(*loaded).ok());
}

TEST(FrameworkTest, RejectsWrongInputSize)  {
  auto graph = model::BuildModel(SmallSpec(Architecture::kMbNet));
  ASSERT_TRUE(graph.ok());
  auto framework = CreateFramework(FrameworkKind::kTflm);
  auto loaded = framework->WrapModel(*graph);
  ASSERT_TRUE(loaded.ok());
  auto runtime = framework->CreateRuntime(*loaded);
  ASSERT_TRUE(runtime.ok());
  EXPECT_FALSE((*runtime)->Execute(Bytes(13, 0)).ok());
  EXPECT_FALSE((*runtime)->Execute(Bytes{}).ok());
}

TEST(FrameworkTest, RejectsCorruptModelBytes) {
  auto framework = CreateFramework(FrameworkKind::kTvm);
  EXPECT_FALSE(framework->LoadModel(Bytes(100, 7)).ok());
}

TEST(FrameworkTest, NamesRoundTrip) {
  EXPECT_STREQ(ToString(FrameworkKind::kTflm), "tflm");
  EXPECT_STREQ(ToString(FrameworkKind::kTvm), "tvm");
  EXPECT_TRUE(FrameworkFromString("tflm").ok());
  EXPECT_TRUE(FrameworkFromString("tvm").ok());
  EXPECT_FALSE(FrameworkFromString("onnx").ok());
}

}  // namespace
}  // namespace sesemi::inference
