#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <future>
#include <map>
#include <thread>
#include <vector>

#include "client/clients.h"
#include "model/zoo.h"
#include "serverless/platform.h"

namespace sesemi::serverless {
namespace {

using client::KeyServiceClient;
using client::ModelOwner;
using client::ModelUser;

class ServerlessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto server = keyservice::StartKeyService(&ks_platform_);
    ASSERT_TRUE(server.ok());
    keyservice_ = std::move(*server);
    auto ks_client = KeyServiceClient::Connect(
        keyservice_.get(), &authority_,
        keyservice::KeyServiceEnclave::ExpectedMeasurement());
    ASSERT_TRUE(ks_client.ok());
    client_ = std::move(*ks_client);

    owner_ = std::make_unique<ModelOwner>("owner");
    user_ = std::make_unique<ModelUser>("user");
    ASSERT_TRUE(owner_->Register(client_.get()).ok());
    ASSERT_TRUE(user_->Register(client_.get()).ok());

    model::ZooSpec spec;
    spec.model_id = "m0";
    spec.scale = 0.002;
    spec.input_hw = 16;
    auto graph = model::BuildModel(spec);
    ASSERT_TRUE(graph.ok());
    graph_ = *graph;
    ASSERT_TRUE(owner_->DeployModel(client_.get(), &storage_, *graph).ok());

    PlatformConfig config;
    config.num_nodes = 2;
    config.keep_alive = SecondsToMicros(180);
    platform_ = std::make_unique<ServerlessPlatform>(config, &authority_, &storage_,
                                                     keyservice_.get(), &clock_);
  }

  void DeployAndAuthorize(const std::string& fn_name,
                          semirt::SemirtOptions options = {}) {
    FunctionSpec spec;
    spec.name = fn_name;
    spec.options = options;
    ASSERT_TRUE(platform_->DeployFunction(spec).ok());
    sgx::Measurement es = semirt::SemirtInstance::MeasurementFor(options);
    ASSERT_TRUE(owner_->GrantAccess(client_.get(), "m0", es, user_->id()).ok());
    ASSERT_TRUE(user_->ProvisionRequestKey(client_.get(), "m0", es).ok());
  }

  Result<std::vector<float>> InvokeOnce(const std::string& fn, bool* cold = nullptr,
                                        const sgx::Measurement* es = nullptr) {
    Bytes input = model::GenerateRandomInput(graph_, 1);
    SESEMI_ASSIGN_OR_RETURN(semirt::InferenceRequest request,
                            user_->BuildRequest("m0", input, es));
    SESEMI_ASSIGN_OR_RETURN(Bytes sealed,
                            platform_->Invoke(fn, request, nullptr, cold));
    SESEMI_ASSIGN_OR_RETURN(Bytes output, user_->DecryptResult("m0", sealed, es));
    return model::ParseOutput(output);
  }

  sgx::AttestationAuthority authority_;
  sgx::SgxPlatform ks_platform_{sgx::SgxGeneration::kSgx2, &authority_};
  std::unique_ptr<keyservice::KeyServiceServer> keyservice_;
  std::unique_ptr<KeyServiceClient> client_;
  std::unique_ptr<ModelOwner> owner_;
  std::unique_ptr<ModelUser> user_;
  storage::InMemoryObjectStore storage_;
  model::ModelGraph graph_;
  ManualClock clock_;
  std::unique_ptr<ServerlessPlatform> platform_;
};

TEST_F(ServerlessTest, ColdThenWarmInvocation) {
  DeployAndAuthorize("predict");
  bool cold = false;
  auto r1 = InvokeOnce("predict", &cold);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_TRUE(cold);
  EXPECT_EQ(platform_->ContainerCount("predict"), 1);

  auto r2 = InvokeOnce("predict", &cold);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(cold);  // warm container reused
  EXPECT_EQ(platform_->ContainerCount("predict"), 1);
  EXPECT_EQ(platform_->stats().cold_starts, 1);
  EXPECT_EQ(platform_->stats().invocations, 2);
}

TEST_F(ServerlessTest, UnknownFunctionRejected) {
  semirt::InferenceRequest request;
  request.user_id = "u";
  request.model_id = "m0";
  request.encrypted_input = Bytes(16, 0);
  EXPECT_TRUE(platform_->Invoke("ghost", request).status().IsNotFound());
}

TEST_F(ServerlessTest, DuplicateDeployRejected) {
  DeployAndAuthorize("predict");
  FunctionSpec dup;
  dup.name = "predict";
  EXPECT_EQ(platform_->DeployFunction(dup).code(), StatusCode::kAlreadyExists);
}

TEST_F(ServerlessTest, KeepAliveReapsIdleContainers) {
  DeployAndAuthorize("predict");
  ASSERT_TRUE(InvokeOnce("predict").ok());
  EXPECT_EQ(platform_->ContainerCount(), 1);

  clock_.Advance(SecondsToMicros(179));
  EXPECT_EQ(platform_->ReapIdleContainers(), 0);  // still within keep-alive
  clock_.Advance(SecondsToMicros(2));
  EXPECT_EQ(platform_->ReapIdleContainers(), 1);
  EXPECT_EQ(platform_->ContainerCount(), 0);

  // Next invocation cold-starts again.
  bool cold = false;
  ASSERT_TRUE(InvokeOnce("predict", &cold).ok());
  EXPECT_TRUE(cold);
}

TEST_F(ServerlessTest, MemoryExhaustionSurfaces) {
  semirt::SemirtOptions options;
  DeployAndAuthorize("predict", options);
  // Each container books 256 MB; two nodes of 4 GB fit 32. Fill the cluster
  // with concurrent holds by issuing invokes from threads? Instead shrink:
  PlatformConfig tiny;
  tiny.num_nodes = 1;
  tiny.invoker_memory_bytes = 300ull << 20;  // fits one 256 MB container
  ServerlessPlatform small(tiny, &authority_, &storage_, keyservice_.get(), &clock_);
  FunctionSpec spec;
  spec.name = "predict";
  ASSERT_TRUE(small.DeployFunction(spec).ok());

  // First request occupies the only container slot; a concurrent second
  // request cannot get memory for another container.
  Bytes input = model::GenerateRandomInput(graph_, 1);
  auto request = user_->BuildRequest("m0", input);
  ASSERT_TRUE(request.ok());

  std::atomic<bool> second_failed{false};
  std::thread t1([&] { (void)small.Invoke("predict", *request); });
  std::thread t2([&] {
    // Races with t1: either reuses the container (in_flight check) or fails
    // with ResourceExhausted — both acceptable; what must not happen is a
    // second container.
    auto r = small.Invoke("predict", *request);
    second_failed = !r.ok();
  });
  t1.join();
  t2.join();
  EXPECT_LE(small.ContainerCount(), 1);
}

TEST_F(ServerlessTest, FunctionsIsolatedAcrossNodes) {
  DeployAndAuthorize("predict");
  semirt::SemirtOptions other;
  other.framework = inference::FrameworkKind::kTflm;
  FunctionSpec spec;
  spec.name = "predict-tflm";
  spec.options = other;
  ASSERT_TRUE(platform_->DeployFunction(spec).ok());
  sgx::Measurement tflm_es = semirt::SemirtInstance::MeasurementFor(other);
  ASSERT_TRUE(owner_->GrantAccess(client_.get(), "m0", tflm_es, user_->id()).ok());
  ASSERT_TRUE(user_->ProvisionRequestKey(client_.get(), "m0", tflm_es).ok());
  sgx::Measurement tvm_es =
      semirt::SemirtInstance::MeasurementFor(semirt::SemirtOptions{});

  // Two deployments provisioned: requests must name the target enclave.
  EXPECT_FALSE(InvokeOnce("predict").ok());  // ambiguous without identity
  ASSERT_TRUE(InvokeOnce("predict", nullptr, &tvm_es).ok());
  ASSERT_TRUE(InvokeOnce("predict-tflm", nullptr, &tflm_es).ok());
  EXPECT_EQ(platform_->ContainerCount("predict"), 1);
  EXPECT_EQ(platform_->ContainerCount("predict-tflm"), 1);
}

TEST_F(ServerlessTest, ConcurrentInvokeAsyncMatchesSerialExecution) {
  // Two functions with distinct enclave identities and TCS budgets; requests
  // for both interleave through InvokeAsync and every response must decrypt
  // to exactly what a serial Invoke of the same input produces.
  semirt::SemirtOptions options_a;
  options_a.num_tcs = 4;
  DeployAndAuthorize("fn-a", options_a);

  semirt::SemirtOptions options_b;
  options_b.num_tcs = 2;
  options_b.framework = inference::FrameworkKind::kTflm;
  FunctionSpec spec_b;
  spec_b.name = "fn-b";
  spec_b.options = options_b;
  ASSERT_TRUE(platform_->DeployFunction(spec_b).ok());
  sgx::Measurement es_b = semirt::SemirtInstance::MeasurementFor(options_b);
  ASSERT_TRUE(owner_->GrantAccess(client_.get(), "m0", es_b, user_->id()).ok());
  ASSERT_TRUE(user_->ProvisionRequestKey(client_.get(), "m0", es_b).ok());
  sgx::Measurement es_a = semirt::SemirtInstance::MeasurementFor(options_a);

  struct Case {
    std::string fn;
    const sgx::Measurement* es;
    uint64_t seed;
  };
  std::vector<Case> cases;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    cases.push_back({"fn-a", &es_a, seed});
    cases.push_back({"fn-b", &es_b, seed});
  }

  // Serial baselines, one per (function, seed).
  std::map<std::pair<std::string, uint64_t>, std::vector<float>> expected;
  for (const Case& c : cases) {
    Bytes input = model::GenerateRandomInput(graph_, c.seed);
    auto request = user_->BuildRequest("m0", input, c.es);
    ASSERT_TRUE(request.ok());
    auto sealed = platform_->Invoke(c.fn, *request);
    ASSERT_TRUE(sealed.ok()) << sealed.status().ToString();
    auto output = user_->DecryptResult("m0", *sealed, c.es);
    ASSERT_TRUE(output.ok());
    auto parsed = model::ParseOutput(*output);
    ASSERT_TRUE(parsed.ok());
    expected[{c.fn, c.seed}] = *parsed;
  }

  // Stress: several caller threads each fire a burst of InvokeAsync calls
  // across the mixed cases, then verify plaintext parity per request.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 12;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<std::pair<const Case*, std::future<InvocationResult>>> inflight;
      for (int i = 0; i < kPerThread; ++i) {
        const Case& c = cases[(t * kPerThread + i) % cases.size()];
        Bytes input = model::GenerateRandomInput(graph_, c.seed);
        auto request = user_->BuildRequest("m0", input, c.es);
        if (!request.ok()) {
          failures.fetch_add(1);
          continue;
        }
        inflight.emplace_back(&c,
                              platform_->InvokeAsync(c.fn, std::move(*request)));
      }
      for (auto& [c, future] : inflight) {
        InvocationResult result = future.get();
        if (!result.response.ok()) {
          failures.fetch_add(1);
          continue;
        }
        auto output = user_->DecryptResult("m0", *result.response, c->es);
        if (!output.ok()) {
          failures.fetch_add(1);
          continue;
        }
        auto parsed = model::ParseOutput(*output);
        if (!parsed.ok()) {
          failures.fetch_add(1);
          continue;
        }
        std::vector<float> scores = *parsed;
        const std::vector<float>& want = expected.at({c->fn, c->seed});
        if (scores.size() != want.size()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (size_t j = 0; j < scores.size(); ++j) {
          if (std::abs(scores[j] - want[j]) > 1e-6f) {
            mismatches.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  // Serial baselines + concurrent burst all counted.
  EXPECT_EQ(platform_->stats().invocations,
            static_cast<int>(cases.size()) + kThreads * kPerThread);
  // Warm reuse: at most one container per function beyond what concurrency
  // forced (each fn-a container carries 4 TCS, fn-b carries 2).
  EXPECT_GE(platform_->ContainerCount("fn-a"), 1);
  EXPECT_GE(platform_->ContainerCount("fn-b"), 1);
}

TEST_F(ServerlessTest, FifoPolicyPreservesSubmissionOrderUnderContention) {
  // Regression for the pre-scheduler backpressure: callers blocked on the
  // in-flight window woke in arbitrary mutex order. With the scheduler, a
  // submission's admission order (sched_seq) must equal its dispatch order
  // (dispatch_seq) under the default FIFO policy, no matter how many threads
  // race to submit.
  DeployAndAuthorize("predict");
  platform_->PauseDispatch();  // build a contended backlog first

  constexpr int kThreads = 4;
  constexpr int kPerThread = 8;
  std::vector<std::future<InvocationResult>> futures(kThreads * kPerThread);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        Bytes input = model::GenerateRandomInput(graph_, 1);
        auto request = user_->BuildRequest("m0", input);
        ASSERT_TRUE(request.ok());
        futures[t * kPerThread + i] =
            platform_->InvokeAsync("predict", std::move(*request));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(platform_->scheduler_stats().queue_depth,
            static_cast<size_t>(kThreads * kPerThread));

  platform_->ResumeDispatch();
  std::vector<std::pair<uint64_t, uint64_t>> order;  // (sched_seq, dispatch_seq)
  for (auto& f : futures) {
    InvocationResult result = f.get();
    ASSERT_TRUE(result.response.ok()) << result.response.status().ToString();
    order.emplace_back(result.sched_seq, result.dispatch_seq);
  }
  std::sort(order.begin(), order.end());
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_GT(order[i].second, order[i - 1].second)
        << "dispatch order diverged from FIFO admission order at " << i;
  }
}

TEST_F(ServerlessTest, BatchedSameModelInvocationsMatchSerial) {
  semirt::SemirtOptions options;
  options.num_tcs = 2;
  FunctionSpec spec;
  spec.name = "batched";
  spec.options = options;
  spec.sched.max_batch = 4;
  ASSERT_TRUE(platform_->DeployFunction(spec).ok());
  sgx::Measurement es = semirt::SemirtInstance::MeasurementFor(options);
  ASSERT_TRUE(owner_->GrantAccess(client_.get(), "m0", es, user_->id()).ok());
  ASSERT_TRUE(user_->ProvisionRequestKey(client_.get(), "m0", es).ok());

  // Serial baselines per seed.
  std::map<uint64_t, std::vector<float>> expected;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Bytes input = model::GenerateRandomInput(graph_, seed);
    auto request = user_->BuildRequest("m0", input);
    ASSERT_TRUE(request.ok());
    auto sealed = platform_->Invoke("batched", *request);
    ASSERT_TRUE(sealed.ok()) << sealed.status().ToString();
    auto output = user_->DecryptResult("m0", *sealed);
    ASSERT_TRUE(output.ok());
    auto parsed = model::ParseOutput(*output);
    ASSERT_TRUE(parsed.ok());
    expected[seed] = *parsed;
  }

  // Queue 12 same-model requests while dispatch is paused so the coalescer
  // has a backlog to batch, then release.
  platform_->PauseDispatch();
  std::vector<std::pair<uint64_t, std::future<InvocationResult>>> futures;
  for (int i = 0; i < 12; ++i) {
    const uint64_t seed = static_cast<uint64_t>(i % 3) + 1;
    Bytes input = model::GenerateRandomInput(graph_, seed);
    auto request = user_->BuildRequest("m0", input);
    ASSERT_TRUE(request.ok());
    futures.emplace_back(seed,
                         platform_->InvokeAsync("batched", std::move(*request)));
  }
  platform_->ResumeDispatch();

  int max_batch_seen = 0;
  for (auto& [seed, future] : futures) {
    InvocationResult result = future.get();
    ASSERT_TRUE(result.response.ok()) << result.response.status().ToString();
    max_batch_seen = std::max(max_batch_seen, result.batch_size);
    auto output = user_->DecryptResult("m0", *result.response);
    ASSERT_TRUE(output.ok());
    auto parsed = model::ParseOutput(*output);
    ASSERT_TRUE(parsed.ok());
    const std::vector<float>& want = expected.at(seed);
    ASSERT_EQ(parsed->size(), want.size());
    for (size_t j = 0; j < want.size(); ++j) {
      EXPECT_NEAR((*parsed)[j], want[j], 1e-5f) << "seed " << seed;
    }
  }
  EXPECT_GT(max_batch_seen, 1) << "coalescer never built a batch";
  const sched::SchedStats stats = platform_->scheduler_stats();
  EXPECT_GT(stats.avg_batch_size, 1.0);
  EXPECT_LE(stats.max_batch_size, 4u);  // respects the configured cap
  EXPECT_EQ(platform_->stats().invocations, 3 + 12);
}

TEST_F(ServerlessTest, RateLimitedFunctionRejectsTyped) {
  semirt::SemirtOptions options;
  FunctionSpec spec;
  spec.name = "limited";
  spec.options = options;
  spec.sched.rate_per_s = 2.0;
  spec.sched.burst = 2.0;
  ASSERT_TRUE(platform_->DeployFunction(spec).ok());
  sgx::Measurement es = semirt::SemirtInstance::MeasurementFor(options);
  ASSERT_TRUE(owner_->GrantAccess(client_.get(), "m0", es, user_->id()).ok());
  ASSERT_TRUE(user_->ProvisionRequestKey(client_.get(), "m0", es).ok());

  auto submit = [&] {
    Bytes input = model::GenerateRandomInput(graph_, 1);
    auto request = user_->BuildRequest("m0", input);
    EXPECT_TRUE(request.ok());
    return platform_->InvokeAsync("limited", std::move(*request));
  };

  auto r1 = submit().get();
  auto r2 = submit().get();
  auto r3 = submit().get();  // token bucket empty (ManualClock: no refill)
  EXPECT_TRUE(r1.response.ok()) << r1.response.status().ToString();
  EXPECT_TRUE(r2.response.ok());
  EXPECT_TRUE(r3.response.status().IsResourceExhausted())
      << r3.response.status().ToString();
  EXPECT_EQ(platform_->scheduler_stats().rejected_rate, 1u);

  clock_.Advance(SecondsToMicros(1));  // refill 2 tokens
  auto r4 = submit().get();
  EXPECT_TRUE(r4.response.ok());
}

TEST_F(ServerlessTest, WeightedFairPolicyServesBacklogByWeight) {
  PlatformConfig config;
  config.num_nodes = 2;
  config.scheduler.policy = sched::PolicyKind::kWeightedFair;
  config.max_inflight = 1;  // single dispatcher: dispatch order == pop order
  ServerlessPlatform platform(config, &authority_, &storage_, keyservice_.get(),
                              &clock_);

  semirt::SemirtOptions options;
  sgx::Measurement es = semirt::SemirtInstance::MeasurementFor(options);
  ASSERT_TRUE(owner_->GrantAccess(client_.get(), "m0", es, user_->id()).ok());
  ASSERT_TRUE(user_->ProvisionRequestKey(client_.get(), "m0", es).ok());
  for (const auto& [name, weight] :
       std::vector<std::pair<std::string, double>>{{"heavy", 2.0}, {"light", 1.0}}) {
    FunctionSpec spec;
    spec.name = name;
    spec.options = options;
    spec.sched.weight = weight;
    ASSERT_TRUE(platform.DeployFunction(spec).ok());
  }

  platform.PauseDispatch();
  std::vector<std::pair<std::string, std::future<InvocationResult>>> futures;
  for (int i = 0; i < 12; ++i) {
    for (const std::string fn : {"heavy", "light"}) {
      Bytes input = model::GenerateRandomInput(graph_, 1);
      auto request = user_->BuildRequest("m0", input);
      ASSERT_TRUE(request.ok());
      futures.emplace_back(fn, platform.InvokeAsync(fn, std::move(*request)));
    }
  }
  platform.ResumeDispatch();

  // Among the first 12 dispatches (both functions still backlogged), service
  // must follow the 2:1 weights.
  std::vector<std::pair<uint64_t, std::string>> dispatches;
  for (auto& [fn, future] : futures) {
    InvocationResult result = future.get();
    ASSERT_TRUE(result.response.ok()) << result.response.status().ToString();
    dispatches.emplace_back(result.dispatch_seq, fn);
  }
  std::sort(dispatches.begin(), dispatches.end());
  int heavy_count = 0, light_count = 0;
  for (int i = 0; i < 12; ++i) {
    (dispatches[i].second == "heavy" ? heavy_count : light_count)++;
  }
  EXPECT_EQ(heavy_count, 8) << "2:1 weights over 12 dispatches";
  EXPECT_EQ(light_count, 4);
}

TEST_F(ServerlessTest, DeadlineEdfShedsExpiredWorkInsteadOfExecuting) {
  // DeadlineEdf used to be ordering-only: a request whose deadline had long
  // passed was still dispatched into the enclave. It must be shed at dispatch
  // time — a typed DeadlineExceeded on the future, counted in
  // SchedStats.drops, and *never executed*.
  PlatformConfig config;
  config.num_nodes = 2;
  config.scheduler.policy = sched::PolicyKind::kDeadlineEdf;
  ServerlessPlatform platform(config, &authority_, &storage_, keyservice_.get(),
                              &clock_);

  semirt::SemirtOptions options;
  sgx::Measurement es = semirt::SemirtInstance::MeasurementFor(options);
  ASSERT_TRUE(owner_->GrantAccess(client_.get(), "m0", es, user_->id()).ok());
  ASSERT_TRUE(user_->ProvisionRequestKey(client_.get(), "m0", es).ok());
  FunctionSpec spec;
  spec.name = "deadline";
  spec.options = options;
  ASSERT_TRUE(platform.DeployFunction(spec).ok());

  // Build the backlog with dispatch paused, then let the deadline expire
  // before releasing the dispatchers.
  platform.PauseDispatch();
  auto make_request = [&] {
    Bytes input = model::GenerateRandomInput(graph_, 1);
    auto request = user_->BuildRequest("m0", input);
    EXPECT_TRUE(request.ok());
    return std::move(*request);
  };
  InvokeOptions expiring;
  expiring.deadline = clock_.Now() + 1000;
  auto doomed = platform.InvokeAsync("deadline", make_request(), expiring);
  auto live = platform.InvokeAsync("deadline", make_request());  // no deadline

  clock_.Advance(SecondsToMicros(5));  // the 1 ms deadline is long gone
  platform.ResumeDispatch();

  InvocationResult shed = doomed.get();
  EXPECT_EQ(shed.response.status().code(), StatusCode::kDeadlineExceeded)
      << shed.response.status().ToString();

  InvocationResult ran = live.get();
  EXPECT_TRUE(ran.response.ok()) << ran.response.status().ToString();

  // The expired request never reached an enclave: exactly one invocation ran.
  EXPECT_EQ(platform.stats().invocations, 1);
  EXPECT_EQ(platform.scheduler_stats().drops, 1u);
}

TEST_F(ServerlessTest, RouterIntegrationFnPackerOverPlatform) {
  // FnPacker routes two models onto pooled endpoints deployed as platform
  // functions — the live-mode analogue of the Table III/IV setup.
  DeployAndAuthorize("pool-ep0");
  semirt::SemirtOptions options;  // same identity as pool-ep0's options
  FunctionSpec ep1;
  ep1.name = "pool-ep1";
  ep1.options = options;
  ASSERT_TRUE(platform_->DeployFunction(ep1).ok());

  fnpacker::FnPoolSpec pool;
  pool.models = {"m0"};
  pool.num_endpoints = 2;
  fnpacker::FnPackerRouter router(pool);
  auto endpoint = router.Route("m0", clock_.Now());
  ASSERT_TRUE(endpoint.ok());
  std::string fn = "pool-ep" + std::to_string(*endpoint);
  auto result = InvokeOnce(fn);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  router.OnComplete("m0", *endpoint, clock_.Now());
  EXPECT_EQ(router.stats().routed, 1);
}

TEST_F(ServerlessTest, ShutdownResolvesBacklogWithTypedUnavailable) {
  // Destroying the platform with a parked backlog used to execute the queued
  // work during teardown; it must instead resolve every future with a typed
  // Unavailable("shutting down") — and resolve ALL of them (a lost promise
  // would hang the .get() below forever).
  DeployAndAuthorize("predict");
  platform_->PauseDispatch();

  constexpr int kBacklog = 32;
  std::vector<std::future<InvocationResult>> futures;
  for (int i = 0; i < kBacklog; ++i) {
    Bytes input = model::GenerateRandomInput(graph_, 1);
    auto request = user_->BuildRequest("m0", input);
    ASSERT_TRUE(request.ok());
    futures.push_back(platform_->InvokeAsync("predict", std::move(*request)));
  }

  platform_.reset();  // dispatch still paused: nothing was executed

  for (auto& f : futures) {
    InvocationResult out = f.get();
    EXPECT_EQ(out.response.status().code(), StatusCode::kUnavailable)
        << out.response.status().ToString();
    EXPECT_NE(out.response.status().message().find("shutting down"),
              std::string::npos);
  }
}

TEST_F(ServerlessTest, ExecutionDeadlineCutsExpiredRequestBeforeEnclaveEntry) {
  // Under FIFO the scheduler does not shed on deadlines — enforcement happens
  // at execution time: the dispatch-side ExecDeadline cuts the request before
  // it ever acquires a container, with a typed DeadlineExceeded.
  DeployAndAuthorize("predict");
  platform_->PauseDispatch();

  Bytes input = model::GenerateRandomInput(graph_, 1);
  auto request = user_->BuildRequest("m0", input);
  ASSERT_TRUE(request.ok());
  InvokeOptions options;
  options.deadline = clock_.Now() + 1000;
  auto doomed = platform_->InvokeAsync("predict", std::move(*request), options);

  clock_.Advance(SecondsToMicros(5));  // deadline long gone before resume
  platform_->ResumeDispatch();

  InvocationResult out = doomed.get();
  EXPECT_EQ(out.response.status().code(), StatusCode::kDeadlineExceeded)
      << out.response.status().ToString();
  EXPECT_EQ(platform_->stats().invocations, 0);  // never reached an enclave
  EXPECT_EQ(platform_->stats().deadline_cuts, 1u);
  EXPECT_EQ(platform_->recovery_stats().deadline_cuts, 1u);
}

}  // namespace
}  // namespace sesemi::serverless
