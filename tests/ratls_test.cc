#include <gtest/gtest.h>

#include "ratls/handshake.h"
#include "ratls/session.h"
#include "sgx/platform.h"

namespace sesemi::ratls {
namespace {

using sgx::AttestationAuthority;
using sgx::EnclaveConfig;
using sgx::EnclaveImage;
using sgx::SgxGeneration;
using sgx::SgxPlatform;

struct Rig {
  AttestationAuthority authority;
  SgxPlatform platform{SgxGeneration::kSgx2, &authority};
  std::unique_ptr<sgx::Enclave> server_enclave;
  std::unique_ptr<sgx::Enclave> client_enclave;

  Rig() {
    EnclaveImage server_image("keyservice", {{"ks", ToBytes("keyservice code")}}, {});
    EnclaveImage client_image("semirt", {{"rt", ToBytes("semirt code")}}, {});
    server_enclave = std::move(*platform.CreateEnclave(server_image));
    client_enclave = std::move(*platform.CreateEnclave(client_image));
  }
};

// ---------------------------------------------------------------- Session

TEST(SecureSessionTest, BidirectionalRoundTrip) {
  Bytes k1(16, 1), k2(16, 2);
  auto a = SecureSession::Create(k1, k2);
  auto b = SecureSession::Create(k2, k1);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  auto record = a->Seal(ToBytes("hello"));
  ASSERT_TRUE(record.ok());
  auto plain = b->Open(*record);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(ToString(*plain), "hello");

  auto reply = b->Seal(ToBytes("world"));
  ASSERT_TRUE(reply.ok());
  auto plain2 = a->Open(*reply);
  ASSERT_TRUE(plain2.ok());
  EXPECT_EQ(ToString(*plain2), "world");
}

TEST(SecureSessionTest, ReplayRejected) {
  Bytes k1(16, 1), k2(16, 2);
  auto a = SecureSession::Create(k1, k2);
  auto b = SecureSession::Create(k2, k1);
  ASSERT_TRUE(a.ok() && b.ok());
  auto r = a->Seal(ToBytes("msg"));
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(b->Open(*r).ok());
  EXPECT_FALSE(b->Open(*r).ok());  // same record replayed
}

TEST(SecureSessionTest, ReorderRejected) {
  Bytes k1(16, 1), k2(16, 2);
  auto a = SecureSession::Create(k1, k2);
  auto b = SecureSession::Create(k2, k1);
  ASSERT_TRUE(a.ok() && b.ok());
  auto r1 = a->Seal(ToBytes("first"));
  auto r2 = a->Seal(ToBytes("second"));
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_FALSE(b->Open(*r2).ok());  // delivered out of order
}

TEST(SecureSessionTest, SequenceNumbersAdvance) {
  Bytes k1(16, 1), k2(16, 2);
  auto a = SecureSession::Create(k1, k2);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->send_seq(), 0u);
  ASSERT_TRUE(a->Seal(ToBytes("x")).ok());
  ASSERT_TRUE(a->Seal(ToBytes("y")).ok());
  EXPECT_EQ(a->send_seq(), 2u);
}

TEST(SessionKeysTest, DirectionalKeysDiffer) {
  Bytes secret(32, 7);
  Bytes transcript(32, 9);
  auto keys = DeriveSessionKeys(secret, transcript);
  ASSERT_TRUE(keys.ok());
  EXPECT_NE(keys->initiator_to_acceptor, keys->acceptor_to_initiator);
  EXPECT_EQ(keys->initiator_to_acceptor.size(), 16u);
}

// ---------------------------------------------------------------- Handshake

TEST(HandshakeTest, OneWayAttestationEstablishesChannel) {
  Rig rig;
  RatlsInitiator client(&rig.authority);
  auto hello = client.Start();
  ASSERT_TRUE(hello.ok());
  EXPECT_FALSE(hello->quote.has_value());

  RatlsAcceptor acceptor(rig.server_enclave.get());
  auto accepted = acceptor.Accept(*hello, /*require_peer_quote=*/false);
  ASSERT_TRUE(accepted.ok());
  EXPECT_FALSE(accepted->peer_mrenclave.has_value());

  auto session = client.Finish(accepted->hello, rig.server_enclave->mrenclave());
  ASSERT_TRUE(session.ok());

  // Client -> server -> client echo through the channel.
  auto record = session->Seal(ToBytes("register key"));
  ASSERT_TRUE(record.ok());
  auto plain = accepted->session.Open(*record);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(ToString(*plain), "register key");
  auto reply = accepted->session.Seal(ToBytes("ok"));
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(session->Open(*reply).ok());
}

TEST(HandshakeTest, MutualAttestationExposesPeerIdentity) {
  Rig rig;
  RatlsInitiator semirt(&rig.authority, rig.client_enclave.get());
  auto hello = semirt.Start();
  ASSERT_TRUE(hello.ok());
  ASSERT_TRUE(hello->quote.has_value());

  RatlsAcceptor keyservice(rig.server_enclave.get());
  auto accepted = keyservice.Accept(*hello, /*require_peer_quote=*/true);
  ASSERT_TRUE(accepted.ok());
  ASSERT_TRUE(accepted->peer_mrenclave.has_value());
  EXPECT_EQ(*accepted->peer_mrenclave, rig.client_enclave->mrenclave());

  auto session = semirt.Finish(accepted->hello, rig.server_enclave->mrenclave());
  ASSERT_TRUE(session.ok());
}

TEST(HandshakeTest, MissingPeerQuoteRejectedWhenRequired) {
  Rig rig;
  RatlsInitiator plain_client(&rig.authority);
  auto hello = plain_client.Start();
  ASSERT_TRUE(hello.ok());
  RatlsAcceptor keyservice(rig.server_enclave.get());
  auto accepted = keyservice.Accept(*hello, /*require_peer_quote=*/true);
  EXPECT_FALSE(accepted.ok());
  EXPECT_TRUE(accepted.status().IsUnauthenticated());
}

TEST(HandshakeTest, WrongServerMeasurementRejected) {
  Rig rig;
  RatlsInitiator client(&rig.authority);
  auto hello = client.Start();
  ASSERT_TRUE(hello.ok());
  RatlsAcceptor acceptor(rig.server_enclave.get());
  auto accepted = acceptor.Accept(*hello, false);
  ASSERT_TRUE(accepted.ok());
  // Client expects a different enclave (e.g. attacker swapped the server).
  auto session = client.Finish(accepted->hello, rig.client_enclave->mrenclave());
  EXPECT_FALSE(session.ok());
  EXPECT_TRUE(session.status().IsUnauthenticated());
}

TEST(HandshakeTest, SubstitutedChannelKeyRejected) {
  Rig rig;
  RatlsInitiator client(&rig.authority);
  auto hello = client.Start();
  ASSERT_TRUE(hello.ok());
  RatlsAcceptor acceptor(rig.server_enclave.get());
  auto accepted = acceptor.Accept(*hello, false);
  ASSERT_TRUE(accepted.ok());

  // A MITM replaces the server's public key but cannot re-bind the quote.
  ServerHello mitm = accepted->hello;
  auto attacker = crypto::GenerateX25519KeyPair();
  mitm.public_key = attacker.public_key;
  auto session = client.Finish(mitm, rig.server_enclave->mrenclave());
  EXPECT_FALSE(session.ok());
}

TEST(HandshakeTest, QuoteReplayForDifferentClientRejected) {
  Rig rig;
  RatlsAcceptor acceptor(rig.server_enclave.get());

  RatlsInitiator client_a(&rig.authority);
  auto hello_a = client_a.Start();
  ASSERT_TRUE(hello_a.ok());
  auto accepted_a = acceptor.Accept(*hello_a, false);
  ASSERT_TRUE(accepted_a.ok());

  // Replaying A's ServerHello to client B must fail: the binding covers the
  // client key, which differs.
  RatlsInitiator client_b(&rig.authority);
  ASSERT_TRUE(client_b.Start().ok());
  auto session = client_b.Finish(accepted_a->hello, rig.server_enclave->mrenclave());
  EXPECT_FALSE(session.ok());
}

TEST(HandshakeTest, FinishBeforeStartFails) {
  Rig rig;
  RatlsInitiator client(&rig.authority);
  ServerHello bogus;
  auto session = client.Finish(bogus, rig.server_enclave->mrenclave());
  EXPECT_FALSE(session.ok());
}

TEST(HandshakeTest, HelloSerializationRoundTrip) {
  Rig rig;
  RatlsInitiator semirt(&rig.authority, rig.client_enclave.get());
  auto hello = semirt.Start();
  ASSERT_TRUE(hello.ok());
  auto parsed = ClientHello::Parse(hello->Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->public_key, hello->public_key);
  ASSERT_TRUE(parsed->quote.has_value());

  RatlsAcceptor acceptor(rig.server_enclave.get());
  auto accepted = acceptor.Accept(*parsed, true);
  ASSERT_TRUE(accepted.ok());
  auto hello2 = ServerHello::Parse(accepted->hello.Serialize());
  ASSERT_TRUE(hello2.ok());
  auto session = semirt.Finish(*hello2, rig.server_enclave->mrenclave());
  EXPECT_TRUE(session.ok());
}

TEST(HandshakeTest, ParseRejectsTruncatedHellos) {
  EXPECT_FALSE(ClientHello::Parse(Bytes(10, 0)).ok());
  EXPECT_FALSE(ServerHello::Parse(Bytes(33, 0)).ok());
}

}  // namespace
}  // namespace sesemi::ratls
