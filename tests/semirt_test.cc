#include <gtest/gtest.h>

#include <thread>

#include "client/clients.h"
#include "inference/compiled_model.h"
#include "keyservice/keyservice.h"
#include "model/format.h"
#include "model/zoo.h"
#include "semirt/semirt.h"
#include "sgx/platform.h"
#include "storage/object_store.h"

namespace sesemi::semirt {
namespace {

using client::KeyServiceClient;
using client::ModelOwner;
using client::ModelUser;

/// End-to-end rig: KeyService + storage + one owner with two deployed models
/// + one authorized user.
class SemirtTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto server = keyservice::StartKeyService(&platform_);
    ASSERT_TRUE(server.ok());
    keyservice_ = std::move(*server);
    auto ks_client = KeyServiceClient::Connect(
        keyservice_.get(), &authority_,
        keyservice::KeyServiceEnclave::ExpectedMeasurement());
    ASSERT_TRUE(ks_client.ok());
    client_ = std::move(*ks_client);

    owner_ = std::make_unique<ModelOwner>("hospital");
    user_ = std::make_unique<ModelUser>("patient");
    ASSERT_TRUE(owner_->Register(client_.get()).ok());
    ASSERT_TRUE(user_->Register(client_.get()).ok());

    DeployModel("m0", model::Architecture::kMbNet);
    DeployModel("m1", model::Architecture::kDsNet);
  }

  void DeployModel(const std::string& id, model::Architecture arch) {
    model::ZooSpec spec;
    spec.model_id = id;
    spec.arch = arch;
    spec.scale = 0.002;
    spec.input_hw = 16;
    auto graph = model::BuildModel(spec);
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();
    graphs_[id] = *graph;
    ASSERT_TRUE(owner_->DeployModel(client_.get(), &storage_, *graph,
                                    /*with_plaintext_copy=*/true).ok());
  }

  /// Authorize `user_` for `model_id` on enclaves deployed with `options`.
  void Authorize(const std::string& model_id, const SemirtOptions& options) {
    sgx::Measurement es = SemirtInstance::MeasurementFor(options);
    ASSERT_TRUE(owner_->GrantAccess(client_.get(), model_id, es, user_->id()).ok());
    ASSERT_TRUE(user_->ProvisionRequestKey(client_.get(), model_id, es).ok());
  }

  Result<std::unique_ptr<SemirtInstance>> MakeInstance(const SemirtOptions& options) {
    return SemirtInstance::Create(&platform_, options, &storage_, keyservice_.get());
  }

  /// Round-trip one request and return the decrypted scores.
  Result<std::vector<float>> RunRequest(SemirtInstance* instance,
                                        const std::string& model_id,
                                        StageTimings* timings = nullptr,
                                        uint64_t input_seed = 1,
                                        const sgx::Measurement* es = nullptr) {
    Bytes input = model::GenerateRandomInput(graphs_[model_id], input_seed);
    SESEMI_ASSIGN_OR_RETURN(InferenceRequest request,
                            user_->BuildRequest(model_id, input, es));
    SESEMI_ASSIGN_OR_RETURN(Bytes sealed, instance->HandleRequest(request, timings));
    SESEMI_ASSIGN_OR_RETURN(Bytes output, user_->DecryptResult(model_id, sealed, es));
    return model::ParseOutput(output);
  }

  sgx::AttestationAuthority authority_;
  sgx::SgxPlatform platform_{sgx::SgxGeneration::kSgx2, &authority_};
  std::unique_ptr<keyservice::KeyServiceServer> keyservice_;
  std::unique_ptr<KeyServiceClient> client_;
  std::unique_ptr<ModelOwner> owner_;
  std::unique_ptr<ModelUser> user_;
  storage::InMemoryObjectStore storage_;
  std::map<std::string, model::ModelGraph> graphs_;
};

TEST_F(SemirtTest, EndToEndEncryptedInference) {
  SemirtOptions options;
  Authorize("m0", options);
  auto instance = MakeInstance(options);
  ASSERT_TRUE(instance.ok()) << instance.status().ToString();

  auto scores = RunRequest(instance->get(), "m0");
  ASSERT_TRUE(scores.ok()) << scores.status().ToString();
  ASSERT_EQ(scores->size(), 10u);
  float sum = 0;
  for (float s : *scores) sum += s;
  EXPECT_NEAR(sum, 1.0f, 1e-4);
}

TEST_F(SemirtTest, ColdWarmHotProgression) {
  SemirtOptions options;
  Authorize("m0", options);
  Authorize("m1", options);
  auto instance = MakeInstance(options);
  ASSERT_TRUE(instance.ok());

  StageTimings t;
  ASSERT_TRUE(RunRequest(instance->get(), "m0", &t).ok());
  EXPECT_EQ(t.kind, InvocationKind::kCold);

  ASSERT_TRUE(RunRequest(instance->get(), "m0", &t).ok());
  EXPECT_EQ(t.kind, InvocationKind::kHot);  // same model, same user

  ASSERT_TRUE(RunRequest(instance->get(), "m1", &t).ok());
  EXPECT_EQ(t.kind, InvocationKind::kWarm);  // model switch

  ASSERT_TRUE(RunRequest(instance->get(), "m1", &t).ok());
  EXPECT_EQ(t.kind, InvocationKind::kHot);

  SemirtStats stats = instance->get()->stats();
  EXPECT_EQ(stats.cold_invocations, 1);
  EXPECT_EQ(stats.warm_invocations, 1);
  EXPECT_EQ(stats.hot_invocations, 2);
  EXPECT_EQ(stats.requests, 4);
}

TEST_F(SemirtTest, HotPathSkipsKeyFetchAndModelLoad) {
  SemirtOptions options;
  Authorize("m0", options);
  auto instance = MakeInstance(options);
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(RunRequest(instance->get(), "m0").ok());
  SemirtStats before = instance->get()->stats();
  ASSERT_TRUE(RunRequest(instance->get(), "m0").ok());
  SemirtStats after = instance->get()->stats();
  EXPECT_EQ(after.key_fetches, before.key_fetches);
  EXPECT_EQ(after.model_loads, before.model_loads);
  EXPECT_EQ(after.runtime_inits, before.runtime_inits);
}

TEST_F(SemirtTest, SingleMutualAttestationAcrossRequests) {
  // §IV-B: the secure channel to KeyService persists after the first remote
  // attestation. Switching models reuses it.
  SemirtOptions options;
  Authorize("m0", options);
  Authorize("m1", options);
  auto instance = MakeInstance(options);
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(RunRequest(instance->get(), "m0").ok());
  ASSERT_TRUE(RunRequest(instance->get(), "m1").ok());
  ASSERT_TRUE(RunRequest(instance->get(), "m0").ok());
  SemirtStats stats = instance->get()->stats();
  EXPECT_EQ(stats.key_fetches, 3);  // key cache holds one pair
  // but attestation happened exactly once (session reuse):
  // verified indirectly: enclave ecall count only grows by requests.
  EXPECT_EQ(stats.requests, 3);
}

TEST_F(SemirtTest, UnauthorizedUserCannotExecute) {
  SemirtOptions options;
  Authorize("m0", options);
  auto instance = MakeInstance(options);
  ASSERT_TRUE(instance.ok());

  ModelUser mallory("mallory");
  ASSERT_TRUE(mallory.Register(client_.get()).ok());
  // Mallory provisions her own request key but has no owner grant.
  sgx::Measurement es = SemirtInstance::MeasurementFor(options);
  ASSERT_TRUE(mallory.ProvisionRequestKey(client_.get(), "m0", es).ok());

  Bytes input = model::GenerateRandomInput(graphs_["m0"], 1);
  auto request = mallory.BuildRequest("m0", input);
  ASSERT_TRUE(request.ok());
  auto r = (*instance)->HandleRequest(*request);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsPermissionDenied());
}

TEST_F(SemirtTest, WrongEnclaveConfigurationDeniedKeys) {
  // User authorized the 1-TCS build; a 4-TCS deployment has a different
  // MRENCLAVE and must be refused by KeyService.
  SemirtOptions authorized;
  Authorize("m0", authorized);

  SemirtOptions rogue;
  rogue.num_tcs = 4;
  auto instance = MakeInstance(rogue);
  ASSERT_TRUE(instance.ok());
  Bytes input = model::GenerateRandomInput(graphs_["m0"], 1);
  auto request = user_->BuildRequest("m0", input);
  ASSERT_TRUE(request.ok());
  auto r = (*instance)->HandleRequest(*request);
  EXPECT_FALSE(r.ok());
}

TEST_F(SemirtTest, TamperedRequestRejected) {
  SemirtOptions options;
  Authorize("m0", options);
  auto instance = MakeInstance(options);
  ASSERT_TRUE(instance.ok());
  Bytes input = model::GenerateRandomInput(graphs_["m0"], 1);
  auto request = user_->BuildRequest("m0", input);
  ASSERT_TRUE(request.ok());
  request->encrypted_input[request->encrypted_input.size() / 2] ^= 1;
  auto r = (*instance)->HandleRequest(*request);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnauthenticated());
}

TEST_F(SemirtTest, RequestCannotBeRetargetedAtAnotherModel) {
  SemirtOptions options;
  Authorize("m0", options);
  Authorize("m1", options);
  auto instance = MakeInstance(options);
  ASSERT_TRUE(instance.ok());
  Bytes input = model::GenerateRandomInput(graphs_["m0"], 1);
  auto request = user_->BuildRequest("m0", input);
  ASSERT_TRUE(request.ok());
  request->model_id = "m1";  // network attacker rewrites routing metadata
  auto r = (*instance)->HandleRequest(*request);
  EXPECT_FALSE(r.ok());  // AAD binding breaks decryption
}

TEST_F(SemirtTest, FixedModelEnclaveRefusesOtherModels) {
  SemirtOptions options;
  options.fixed_model_id = "m0";
  Authorize("m0", options);
  auto instance = MakeInstance(options);
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(RunRequest(instance->get(), "m0").ok());

  Bytes input = model::GenerateRandomInput(graphs_["m1"], 1);
  // Authorize m1 for this identity too — the enclave must still refuse.
  Authorize("m1", options);
  auto request = user_->BuildRequest("m1", input);
  ASSERT_TRUE(request.ok());
  auto r = (*instance)->HandleRequest(*request);
  EXPECT_TRUE(r.status().IsPermissionDenied());
}

TEST_F(SemirtTest, SequentialModeClearsStateEachRequest) {
  SemirtOptions options;
  options.sequential_mode = true;
  options.disable_key_cache = true;
  Authorize("m0", options);
  auto instance = MakeInstance(options);
  ASSERT_TRUE(instance.ok());

  StageTimings t;
  ASSERT_TRUE(RunRequest(instance->get(), "m0", &t).ok());
  ASSERT_TRUE(RunRequest(instance->get(), "m0", &t).ok());
  // Table II: no hot path — every request refetches keys and reinits the
  // runtime (the model itself may stay loaded).
  EXPECT_EQ(t.kind, InvocationKind::kWarm);
  SemirtStats stats = instance->get()->stats();
  EXPECT_EQ(stats.key_fetches, 2);
  EXPECT_EQ(stats.runtime_inits, 2);
  EXPECT_EQ(stats.hot_invocations, 0);
}

TEST_F(SemirtTest, IsoReuseReloadsModelEveryRequest) {
  SemirtOptions options;
  options.mode = RuntimeMode::kIsoReuse;
  Authorize("m0", options);
  auto instance = MakeInstance(options);
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(RunRequest(instance->get(), "m0").ok());
  ASSERT_TRUE(RunRequest(instance->get(), "m0").ok());
  ASSERT_TRUE(RunRequest(instance->get(), "m0").ok());
  SemirtStats stats = instance->get()->stats();
  EXPECT_EQ(stats.model_loads, 3);    // reload per request
  EXPECT_EQ(stats.runtime_inits, 3);  // reinit per request
  EXPECT_EQ(stats.key_fetches, 1);    // keys ARE reused
  EXPECT_EQ(stats.hot_invocations, 0);
}

TEST_F(SemirtTest, NativeModeRelaunchesEnclave) {
  SemirtOptions options;
  options.mode = RuntimeMode::kNative;
  Authorize("m0", options);
  auto instance = MakeInstance(options);
  ASSERT_TRUE(instance.ok());
  StageTimings t;
  ASSERT_TRUE(RunRequest(instance->get(), "m0", &t).ok());
  EXPECT_EQ(t.kind, InvocationKind::kCold);
  ASSERT_TRUE(RunRequest(instance->get(), "m0", &t).ok());
  EXPECT_EQ(t.kind, InvocationKind::kCold);  // every request is cold
  SemirtStats stats = instance->get()->stats();
  EXPECT_EQ(stats.cold_invocations, 2);
  EXPECT_EQ(stats.key_fetches, 2);  // fresh enclave implies fresh attestation
}

TEST_F(SemirtTest, UntrustedModeRunsPlaintext) {
  SemirtOptions options;
  options.mode = RuntimeMode::kUntrusted;
  auto instance =
      SemirtInstance::Create(&platform_, options, &storage_, nullptr);
  ASSERT_TRUE(instance.ok());

  InferenceRequest request;
  request.user_id = "anyone";
  request.model_id = "m0";
  request.encrypted_input = model::GenerateRandomInput(graphs_["m0"], 1);  // plaintext
  StageTimings t;
  auto out = (*instance)->HandleRequest(request, &t);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(t.kind, InvocationKind::kCold);
  auto out2 = (*instance)->HandleRequest(request, &t);
  ASSERT_TRUE(out2.ok());
  EXPECT_EQ(t.kind, InvocationKind::kHot);  // untrusted-reuse
  EXPECT_EQ(*out, *out2);
}

TEST_F(SemirtTest, TrustedAndUntrustedAgree) {
  SemirtOptions trusted;
  Authorize("m0", trusted);
  auto t_instance = MakeInstance(trusted);
  ASSERT_TRUE(t_instance.ok());
  auto scores = RunRequest(t_instance->get(), "m0", nullptr, 99);
  ASSERT_TRUE(scores.ok());

  SemirtOptions untrusted;
  untrusted.mode = RuntimeMode::kUntrusted;
  auto u_instance = SemirtInstance::Create(&platform_, untrusted, &storage_, nullptr);
  ASSERT_TRUE(u_instance.ok());
  InferenceRequest request;
  request.user_id = "x";
  request.model_id = "m0";
  request.encrypted_input = model::GenerateRandomInput(graphs_["m0"], 99);
  auto out = (*u_instance)->HandleRequest(request);
  ASSERT_TRUE(out.ok());
  auto u_scores = model::ParseOutput(*out);
  ASSERT_TRUE(u_scores.ok());
  ASSERT_EQ(scores->size(), u_scores->size());
  for (size_t i = 0; i < scores->size(); ++i) {
    EXPECT_FLOAT_EQ((*scores)[i], (*u_scores)[i]);
  }
}

TEST_F(SemirtTest, ConcurrentRequestsShareModelMemory) {
  SemirtOptions options;
  options.num_tcs = 4;
  Authorize("m0", options);
  auto instance = MakeInstance(options);
  ASSERT_TRUE(instance.ok());
  // Warm up (loads model once).
  ASSERT_TRUE(RunRequest(instance->get(), "m0").ok());

  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&, i] {
      for (int j = 0; j < 3; ++j) {
        auto r = RunRequest(instance->get(), "m0", nullptr, i * 10 + j);
        if (!r.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  SemirtStats stats = instance->get()->stats();
  EXPECT_EQ(stats.model_loads, 1);       // one shared copy
  EXPECT_LE(stats.runtime_inits, 4);     // at most one per TCS
  EXPECT_EQ(stats.requests, 13);
}

TEST_F(SemirtTest, PeakMemoryScalesSubLinearlyWithConcurrency) {
  // Figure 10: one enclave serving N concurrent requests uses far less than
  // N single-request enclaves, because the model is shared.
  auto peak_for = [&](uint32_t tcs) -> uint64_t {
    SemirtOptions options;
    options.num_tcs = tcs;
    Authorize("m0", options);
    sgx::Measurement es = SemirtInstance::MeasurementFor(options);
    auto instance = MakeInstance(options);
    EXPECT_TRUE(instance.ok());
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (uint32_t i = 0; i < tcs; ++i) {
      threads.emplace_back([&, i] {
        if (!RunRequest(instance->get(), "m0", nullptr, i, &es).ok()) {
          failures.fetch_add(1);
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(failures.load(), 0);
    return (*instance)->heap_peak();
  };
  uint64_t peak1 = peak_for(1);
  uint64_t peak4 = peak_for(4);
  EXPECT_LT(peak4, 4 * peak1);
  // Per-thread runtimes cost something *when the threads overlap*; on a
  // loaded single-core host the four requests can fully serialize onto one
  // TCS slot, in which case equal peaks are the correct outcome.
  EXPECT_GE(peak4, peak1);
}

TEST_F(SemirtTest, PackedWeightsChargedAgainstEnclaveHeap) {
  // MODEL_LOAD charges the compiled artifact — weights plus the pre-packed
  // GEMM panels — against the enclave heap budget, so a heap sized for the
  // flat weights alone must reject the load and a heap with headroom for the
  // packed panels must serve. This is the reservation the platform's node
  // memory accounting inherits via memory_bytes().
  auto compiled = inference::CompiledModel::Compile(graphs_["m0"]);
  ASSERT_TRUE(compiled.ok());
  const uint64_t packed_bytes = compiled->packed_weight_bytes();
  ASSERT_GT(packed_bytes, 0u);
  const uint64_t weight_bytes = graphs_["m0"].WeightBytes();
  // Ciphertext staging + decrypted weights fit, packed panels do not.
  const uint64_t tight_heap = 2 * weight_bytes + packed_bytes / 2 + 4096;

  SemirtOptions tight;
  tight.framework = inference::FrameworkKind::kTvm;
  tight.heap_size_bytes = tight_heap;
  Authorize("m0", tight);
  sgx::Measurement tight_es = SemirtInstance::MeasurementFor(tight);
  auto instance = MakeInstance(tight);
  ASSERT_TRUE(instance.ok());
  EXPECT_FALSE(RunRequest(instance->get(), "m0", nullptr, 1, &tight_es).ok())
      << "heap without room for the packed panels must reject MODEL_LOAD";

  SemirtOptions roomy = tight;
  roomy.heap_size_bytes = 4 * weight_bytes + 2 * packed_bytes + (8ull << 20);
  Authorize("m0", roomy);
  sgx::Measurement es = SemirtInstance::MeasurementFor(roomy);
  auto ok_instance = MakeInstance(roomy);
  ASSERT_TRUE(ok_instance.ok());
  ASSERT_TRUE(RunRequest(ok_instance->get(), "m0", nullptr, 1, &es).ok());
  // The heap peak reflects the packed buffers, not just the flat weights.
  EXPECT_GE((*ok_instance)->heap_peak(), weight_bytes + packed_bytes);
}

TEST_F(SemirtTest, ClearExecutionContextFreesHeap) {
  SemirtOptions options;
  Authorize("m0", options);
  auto instance = MakeInstance(options);
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(RunRequest(instance->get(), "m0").ok());
  EXPECT_GT((*instance)->enclave()->heap_used(), 0u);
  (*instance)->ClearExecutionContext();
  EXPECT_EQ((*instance)->enclave()->heap_used(), 0u);
}

TEST_F(SemirtTest, MissingModelObjectSurfacesNotFound) {
  SemirtOptions options;
  Authorize("m0", options);
  auto instance = MakeInstance(options);
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(storage_.Delete("models/m0").ok());
  Bytes input = model::GenerateRandomInput(graphs_["m0"], 1);
  auto request = user_->BuildRequest("m0", input);
  ASSERT_TRUE(request.ok());
  auto r = (*instance)->HandleRequest(*request);
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST_F(SemirtTest, RejectsMalformedRequests) {
  SemirtOptions options;
  auto instance = MakeInstance(options);
  ASSERT_TRUE(instance.ok());
  InferenceRequest empty;
  EXPECT_FALSE((*instance)->HandleRequest(empty).ok());
  InferenceRequest no_user;
  no_user.model_id = "m0";
  no_user.encrypted_input = Bytes(64, 0);
  EXPECT_FALSE((*instance)->HandleRequest(no_user).ok());
}

TEST_F(SemirtTest, RequestSerializationRoundTrip) {
  InferenceRequest request;
  request.user_id = "u";
  request.model_id = "m";
  request.encrypted_input = Bytes{1, 2, 3};
  auto parsed = InferenceRequest::Parse(request.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->user_id, "u");
  EXPECT_EQ(parsed->model_id, "m");
  EXPECT_EQ(parsed->encrypted_input, (Bytes{1, 2, 3}));
  EXPECT_FALSE(InferenceRequest::Parse(Bytes(5, 9)).ok());
}

}  // namespace
}  // namespace sesemi::semirt
