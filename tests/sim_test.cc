#include <gtest/gtest.h>

#include "sim/cluster.h"
#include "sim/cost_model.h"
#include "sim/event_queue.h"
#include "sim/metrics.h"
#include "workload/generators.h"

namespace sesemi::sim {
namespace {

using inference::FrameworkKind;
using model::Architecture;
using semirt::InvocationKind;
using semirt::RuntimeMode;

// ---------------------------------------------------------------- EventQueue

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(300, [&] { order.push_back(3); });
  q.ScheduleAt(100, [&] { order.push_back(1); });
  q.ScheduleAt(200, [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 300);
}

TEST(EventQueueTest, TiesBreakInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(100, [&] { order.push_back(1); });
  q.ScheduleAt(100, [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(10, [&] {
    ++fired;
    q.ScheduleAfter(5, [&] { ++fired; });
  });
  q.RunAll();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), 15);
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(10, [&] { ++fired; });
  q.ScheduleAt(100, [&] { ++fired; });
  q.RunUntil(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 50);
  EXPECT_EQ(q.pending(), 1u);
}

// ---------------------------------------------------------------- CostModel

TEST(CostModelTest, Figure17ConstantsWiredCorrectly) {
  CostModel m = CostModel::PaperSgx2();
  const ModelProfile& tvm_mbnet = m.profile(FrameworkKind::kTvm, Architecture::kMbNet);
  EXPECT_NEAR(tvm_mbnet.execute_s, 0.0635, 1e-6);
  EXPECT_NEAR(tvm_mbnet.key_fetch_s, 1.18, 1e-6);
  const ModelProfile& tflm_rsnet = m.profile(FrameworkKind::kTflm, Architecture::kRsNet);
  EXPECT_NEAR(tflm_rsnet.execute_s, 14.3, 1e-6);
  EXPECT_EQ(tflm_rsnet.model_bytes, 170ull << 20);
}

TEST(CostModelTest, ColdPathSumMatchesFigure9) {
  // Figure 9's cold bar ~= sum of Figure 17's stages (TVM-MBNET: 1.48 s).
  CostModel m = CostModel::PaperSgx2();
  const ModelProfile& p = m.profile(FrameworkKind::kTvm, Architecture::kMbNet);
  double cold = p.enclave_init_s + p.key_fetch_s + p.model_load_s +
                p.runtime_init_s + p.execute_s;
  EXPECT_NEAR(cold, 1.48, 0.05);
}

TEST(CostModelTest, EnclaveInitScalesWithSizeAndConcurrency) {
  CostModel m = CostModel::PaperSgx2();
  double small_1 = m.EnclaveInitSeconds(128ull << 20, 1);
  double big_1 = m.EnclaveInitSeconds(256ull << 20, 1);
  double big_16 = m.EnclaveInitSeconds(256ull << 20, 16);
  EXPECT_GT(big_1, small_1);
  EXPECT_GT(big_16, 8 * big_1 * 0.9);  // near-linear in concurrency
  // Appendix C: 16 concurrent 256 MB launches ≈ 4.06 s each.
  EXPECT_NEAR(big_16, 4.06, 2.0);
}

TEST(CostModelTest, Sgx1AttestationSlowerThanSgx2) {
  double sgx2 = CostModel::PaperSgx2().AttestationSeconds(1);
  double sgx1 = CostModel::PaperSgx1().AttestationSeconds(1);
  EXPECT_LT(sgx2, 0.2);  // ECDSA/DCAP, local
  EXPECT_GT(sgx1, 1.0);  // EPID, IAS round trip
  // Contention grows both.
  EXPECT_GT(CostModel::PaperSgx2().AttestationSeconds(16), sgx2 * 5);
}

TEST(CostModelTest, ExecutionContendsOnCpuAndEpc) {
  CostModel m = CostModel::PaperSgx2();
  const ModelProfile& p = m.profile(FrameworkKind::kTvm, Architecture::kDsNet);
  double solo = m.ExecuteSeconds(p, 1, 12, 0.5, true);
  double saturated = m.ExecuteSeconds(p, 24, 12, 0.5, true);
  EXPECT_NEAR(saturated, solo * 2, 1e-9);  // 24 runnable on 12 cores
  double paging = m.ExecuteSeconds(p, 1, 12, 2.0, true);
  EXPECT_GT(paging, solo);                 // EPC over-subscribed
  double plain = m.ExecuteSeconds(p, 1, 12, 2.0, false);
  EXPECT_NEAR(plain, p.plain_execute_s, 1e-9);  // untrusted ignores EPC
}

// ---------------------------------------------------------------- Metrics

TEST(MetricsTest, LatencyStatistics) {
  Metrics m;
  for (int i = 1; i <= 100; ++i) {
    RequestRecord r;
    r.submit = 0;
    r.complete = SecondsToMicros(static_cast<double>(i) / 100.0);  // 10ms..1s
    m.Record(r);
  }
  EXPECT_NEAR(m.AvgLatencySeconds(), 0.505, 0.01);
  EXPECT_NEAR(m.PercentileLatencySeconds(95), 0.95, 0.02);
  EXPECT_NEAR(m.PercentileLatencySeconds(50), 0.50, 0.02);
}

TEST(MetricsTest, GbSecondsIntegralOfStepFunction) {
  Metrics m;
  m.SampleMemory(0, static_cast<double>(1ull << 30));                 // 1 GB
  m.SampleMemory(SecondsToMicros(10), static_cast<double>(2ull << 30));  // 2 GB
  m.SampleMemory(SecondsToMicros(20), 0);
  // 10 s @ 1 GB + 10 s @ 2 GB = 30 GB-s.
  EXPECT_NEAR(m.GbSeconds(SecondsToMicros(30)), 30.0, 1e-6);
  EXPECT_NEAR(m.PeakMemoryBytes(), static_cast<double>(2ull << 30), 1.0);
}

TEST(MetricsTest, WindowedAverageSelectsCompletions) {
  Metrics m;
  RequestRecord early;
  early.submit = 0;
  early.complete = SecondsToMicros(1);
  RequestRecord late;
  late.submit = SecondsToMicros(9);
  late.complete = SecondsToMicros(12);
  m.Record(early);
  m.Record(late);
  EXPECT_NEAR(m.AvgLatencySecondsBetween(0, SecondsToMicros(5)), 1.0, 1e-9);
  EXPECT_NEAR(m.AvgLatencySecondsBetween(SecondsToMicros(10), SecondsToMicros(20)),
              3.0, 1e-9);
}

// ---------------------------------------------------------------- ClusterSim

SimFunction TvmMbnetFunction(const std::string& name, RuntimeMode mode,
                             int tcs = 1) {
  SimFunction fn;
  fn.name = name;
  fn.framework = FrameworkKind::kTvm;
  fn.arch = Architecture::kMbNet;
  fn.mode = mode;
  fn.num_tcs = tcs;
  return fn;
}

TEST(ClusterSimTest, ColdWarmHotProgression) {
  SimConfig config;
  config.num_nodes = 1;
  ClusterSim sim(config);
  sim.AddFunction(TvmMbnetFunction("f", RuntimeMode::kSesemi));
  sim.Submit("f", "m0", "u0", 0);
  sim.Submit("f", "m0", "u0", SecondsToMicros(10));
  sim.Submit("f", "m0", "u0", SecondsToMicros(20));
  sim.Run();
  const auto& records = sim.metrics().records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].kind, InvocationKind::kCold);
  EXPECT_EQ(records[1].kind, InvocationKind::kHot);
  EXPECT_EQ(records[2].kind, InvocationKind::kHot);
  // Cold ≈ sandbox + enclave init + key fetch + load + init + exec;
  // hot ≈ platform overhead + exec.
  EXPECT_GT(MicrosToSeconds(records[0].latency()), 1.5);
  EXPECT_LT(MicrosToSeconds(records[1].latency()), 0.3);
}

TEST(ClusterSimTest, HotLatencyMatchesCalibratedExecution) {
  SimConfig config;
  config.num_nodes = 1;  // assertions below are single-node semantics
  ClusterSim sim(config);
  sim.AddFunction(TvmMbnetFunction("f", RuntimeMode::kSesemi));
  ASSERT_TRUE(sim.Prewarm("f", 1, "m0", "u0").ok());
  sim.Submit("f", "m0", "u0", SecondsToMicros(1));
  sim.Run();
  const auto& records = sim.metrics().records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].kind, InvocationKind::kHot);
  EXPECT_NEAR(MicrosToSeconds(records[0].latency()),
              0.0635 + config.cost_model.PlatformOverheadSeconds(), 0.01);
}

TEST(ClusterSimTest, ModelSwitchIsWarm) {
  SimConfig config;
  config.num_nodes = 1;  // assertions below are single-node semantics
  ClusterSim sim(config);
  sim.AddFunction(TvmMbnetFunction("f", RuntimeMode::kSesemi));
  ASSERT_TRUE(sim.Prewarm("f", 1, "m0", "u0").ok());
  sim.Submit("f", "m1", "u0", SecondsToMicros(1));  // different model
  sim.Run();
  ASSERT_EQ(sim.metrics().records().size(), 1u);
  EXPECT_EQ(sim.metrics().records()[0].kind, InvocationKind::kWarm);
}

TEST(ClusterSimTest, IsoReuseAlwaysReloads) {
  SimConfig config;
  config.num_nodes = 1;  // assertions below are single-node semantics
  ClusterSim sim(config);
  sim.AddFunction(TvmMbnetFunction("f", RuntimeMode::kIsoReuse));
  ASSERT_TRUE(sim.Prewarm("f", 1, "m0", "u0").ok());
  for (int i = 1; i <= 3; ++i) sim.Submit("f", "m0", "u0", SecondsToMicros(10 * i));
  sim.Run();
  for (const auto& r : sim.metrics().records()) {
    EXPECT_EQ(r.kind, InvocationKind::kWarm);  // never hot
  }
}

TEST(ClusterSimTest, NativeRelaunchesEnclaveEachRequest) {
  SimConfig config;
  config.num_nodes = 1;  // assertions below are single-node semantics
  ClusterSim sim(config);
  sim.AddFunction(TvmMbnetFunction("f", RuntimeMode::kNative));
  ASSERT_TRUE(sim.Prewarm("f", 1, "m0", "u0").ok());
  sim.Submit("f", "m0", "u0", SecondsToMicros(1));
  sim.Submit("f", "m0", "u0", SecondsToMicros(20));
  sim.Run();
  for (const auto& r : sim.metrics().records()) {
    EXPECT_EQ(r.kind, InvocationKind::kCold);
    EXPECT_GT(MicrosToSeconds(r.latency()), 1.0);
  }
}

TEST(ClusterSimTest, UntrustedSkipsEnclaveCosts) {
  SimConfig config;
  config.num_nodes = 1;  // assertions below are single-node semantics
  ClusterSim sim(config);
  sim.AddFunction(TvmMbnetFunction("f", RuntimeMode::kUntrusted));
  sim.Submit("f", "m0", "u0", 0);
  sim.Submit("f", "m0", "u0", SecondsToMicros(10));
  sim.Run();
  const auto& records = sim.metrics().records();
  ASSERT_EQ(records.size(), 2u);
  // Cold untrusted = sandbox init + plain stages only (no enclave/attestation).
  EXPECT_LT(MicrosToSeconds(records[0].latency()), 1.0);
  EXPECT_NEAR(MicrosToSeconds(records[1].latency()),
              0.07 + config.cost_model.PlatformOverheadSeconds(), 0.02);
}

TEST(ClusterSimTest, ConcurrencySharesContainer) {
  SimConfig config;
  config.num_nodes = 1;  // assertions below are single-node semantics
  ClusterSim sim(config);
  SimFunction fn = TvmMbnetFunction("f", RuntimeMode::kSesemi, /*tcs=*/4);
  sim.AddFunction(fn);
  ASSERT_TRUE(sim.Prewarm("f", 1, "m0", "u0").ok());
  for (int i = 0; i < 4; ++i) sim.Submit("f", "m0", "u0", SecondsToMicros(1));
  sim.Run();
  EXPECT_EQ(sim.metrics().records().size(), 4u);
  // One prewarmed container handled everything: no cold starts.
  EXPECT_EQ(sim.metrics().CountKind(InvocationKind::kCold), 0);
}

TEST(ClusterSimTest, SingleTcsContainersScaleOut) {
  SimConfig config;
  config.num_nodes = 1;  // assertions below are single-node semantics
  ClusterSim sim(config);
  sim.AddFunction(TvmMbnetFunction("f", RuntimeMode::kSesemi, /*tcs=*/1));
  // Two simultaneous requests -> second needs a second container (cold).
  sim.Submit("f", "m0", "u0", 0);
  sim.Submit("f", "m0", "u0", 1000);
  sim.Run();
  EXPECT_EQ(sim.metrics().CountKind(InvocationKind::kCold), 2);
}

TEST(ClusterSimTest, KeepAliveReclaimsMemory) {
  SimConfig config;
  config.num_nodes = 1;  // assertions below are single-node semantics
  config.keep_alive = SecondsToMicros(180);
  ClusterSim sim(config);
  sim.AddFunction(TvmMbnetFunction("f", RuntimeMode::kSesemi));
  sim.Submit("f", "m0", "u0", 0);
  sim.Run();
  EXPECT_EQ(sim.total_containers(), 0);  // reclaimed after keep-alive
  double peak = sim.metrics().PeakMemoryBytes();
  EXPECT_GT(peak, 0);
  // All memory returned by the end.
  EXPECT_DOUBLE_EQ(sim.metrics().memory_series().back().value, 0);
}

TEST(ClusterSimTest, WarmReuseWithinKeepAlive) {
  SimConfig config;
  config.num_nodes = 1;  // assertions below are single-node semantics
  ClusterSim sim(config);
  sim.AddFunction(TvmMbnetFunction("f", RuntimeMode::kSesemi));
  sim.Submit("f", "m0", "u0", 0);
  sim.Submit("f", "m0", "u0", SecondsToMicros(60));  // within 3-min window
  sim.Run();
  EXPECT_EQ(sim.metrics().CountKind(InvocationKind::kCold), 1);
  EXPECT_EQ(sim.metrics().CountKind(InvocationKind::kHot), 1);
}

TEST(ClusterSimTest, ColdStartAfterKeepAliveExpiry) {
  SimConfig config;
  config.num_nodes = 1;  // assertions below are single-node semantics
  config.keep_alive = SecondsToMicros(180);
  ClusterSim sim(config);
  sim.AddFunction(TvmMbnetFunction("f", RuntimeMode::kSesemi));
  sim.Submit("f", "m0", "u0", 0);
  sim.Submit("f", "m0", "u0", SecondsToMicros(600));  // way past keep-alive
  sim.Run();
  EXPECT_EQ(sim.metrics().CountKind(InvocationKind::kCold), 2);
}

TEST(ClusterSimTest, SesemiBeatsIsoReuseUnderLoad) {
  // The headline comparison (Figure 13 shape): same workload, SeSeMI's hot
  // path yields lower average latency than Iso-reuse, which beats Native.
  auto run_mode = [](RuntimeMode mode) {
    SimConfig config;
    config.num_nodes = 2;
    ClusterSim sim(config);
    SimFunction fn;
    fn.name = "f";
    fn.framework = FrameworkKind::kTvm;
    fn.arch = Architecture::kDsNet;
    fn.mode = mode;
    sim.AddFunction(fn);
    auto trace = workload::Poisson(2.0, 120, "m0", "u0", 11);
    for (const auto& a : trace) sim.Submit("f", a.model_id, a.user_id, a.time);
    sim.Run();
    return sim.metrics().AvgLatencySeconds();
  };
  double sesemi = run_mode(RuntimeMode::kSesemi);
  double iso = run_mode(RuntimeMode::kIsoReuse);
  double native = run_mode(RuntimeMode::kNative);
  EXPECT_LT(sesemi, iso);
  EXPECT_LT(iso, native);
}

TEST(ClusterSimTest, QueueingWhenClusterSaturated) {
  SimConfig config;
  config.num_nodes = 1;
  config.invoker_memory_bytes = 128ull << 20;  // room for exactly one container
  ClusterSim sim(config);
  sim.AddFunction(TvmMbnetFunction("f", RuntimeMode::kSesemi));
  sim.Submit("f", "m0", "u0", 0);
  sim.Submit("f", "m0", "u0", 1);  // must queue behind the first
  sim.Run();
  ASSERT_EQ(sim.metrics().records().size(), 2u);
  // Second request completes after the first (no second container possible).
  EXPECT_GT(sim.metrics().records()[1].complete, sim.metrics().records()[0].complete);
  EXPECT_EQ(sim.metrics().CountKind(InvocationKind::kCold), 1);
}

TEST(ClusterSimTest, Sgx1EpcPressureSlowsExecution) {
  // Figure 11b: on SGX1, many concurrent TVM enclaves exceed the 128 MB EPC
  // and execution slows down versus a single enclave.
  double solo, crowded;
  {
    SCOPED_TRACE("solo");
    solo = 0;
    SimConfig config;
    config.num_nodes = 1;
    config.cost_model = CostModel::PaperSgx1();
    ClusterSim sim(config);
    sim.AddFunction(TvmMbnetFunction("f", RuntimeMode::kSesemi));
    ASSERT_TRUE(sim.Prewarm("f", 1, "m0", "u0").ok());
    sim.Submit("f", "m0", "u0", SecondsToMicros(1));
    sim.Run();
    solo = sim.metrics().AvgLatencySeconds();
  }
  {
    SimConfig config;
    config.num_nodes = 1;
    config.cost_model = CostModel::PaperSgx1();
    ClusterSim sim(config);
    sim.AddFunction(TvmMbnetFunction("f", RuntimeMode::kSesemi));
    ASSERT_TRUE(sim.Prewarm("f", 8, "m0", "u0").ok());
    for (int i = 0; i < 8; ++i) sim.Submit("f", "m0", "u0", SecondsToMicros(1));
    sim.Run();
    crowded = sim.metrics().AvgLatencySeconds();
  }
  EXPECT_GT(crowded, solo * 1.5);
}

TEST(CostModelTest, CalibratedModelCarriesMeasuredStages) {
  // The differential harness builds this model from live StageTimings; every
  // (framework, arch) profile must carry the measured values verbatim, with
  // the paper's contention surcharges and paging pressure switched off.
  CalibrationProfile calibration;
  calibration.execute_s = 0.004;
  calibration.key_fetch_s = 0.02;
  calibration.model_load_s = 0.003;
  calibration.runtime_init_s = 0.001;
  CostModel model = CostModel::Calibrated(calibration);

  const ModelProfile& p = model.profile(FrameworkKind::kTflm, Architecture::kRsNet);
  EXPECT_DOUBLE_EQ(p.execute_s, 0.004);
  EXPECT_DOUBLE_EQ(p.key_fetch_s, 0.02);
  EXPECT_DOUBLE_EQ(p.model_load_s, 0.003);
  EXPECT_DOUBLE_EQ(p.runtime_init_s, 0.001);
  EXPECT_DOUBLE_EQ(p.paging_sensitivity, 0.0);
  EXPECT_DOUBLE_EQ(model.AttestationSeconds(16), 0.0);
  EXPECT_DOUBLE_EQ(model.SandboxInitSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(model.PlatformOverheadSeconds(), 0.0);

  // End to end: a prewarmed single-node sim's hot latency is exactly the
  // calibrated execute time (no overhead terms left).
  SimConfig config;
  config.num_nodes = 1;
  config.cost_model = model;
  ClusterSim sim(config);
  sim.AddFunction(TvmMbnetFunction("f", RuntimeMode::kSesemi));
  ASSERT_TRUE(sim.Prewarm("f", 1, "m0", "u0").ok());
  sim.Submit("f", "m0", "u0", SecondsToMicros(1));
  sim.Run();
  ASSERT_EQ(sim.metrics().records().size(), 1u);
  EXPECT_EQ(sim.metrics().records()[0].kind, InvocationKind::kHot);
  EXPECT_NEAR(MicrosToSeconds(sim.metrics().records()[0].latency()), 0.004, 1e-4);
}

}  // namespace
}  // namespace sesemi::sim
