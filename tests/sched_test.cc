#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "sched/scheduler.h"

namespace sesemi::sched {
namespace {

QueuedRequest Make(const std::string& function, const std::string& model = "m0",
                   const std::string& session = "u0", int priority = -1,
                   TimeMicros deadline = kNoDeadline) {
  QueuedRequest r;
  r.function = function;
  r.model_id = model;
  r.session_id = session;
  r.priority = priority;
  r.deadline = deadline;
  return r;
}

TEST(TokenBucketTest, RejectsBeyondBurstThenRefills) {
  TokenBucket bucket(/*rate_per_s=*/10.0, /*burst=*/5.0);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(bucket.TryAcquire(0)) << i;
  EXPECT_FALSE(bucket.TryAcquire(0));  // burst exhausted

  // 100 ms at 10 rps refills exactly one token.
  EXPECT_TRUE(bucket.TryAcquire(100000));
  EXPECT_FALSE(bucket.TryAcquire(100000));

  // Refill caps at the burst: a long idle period grants 5 tokens, not 50.
  const TimeMicros later = SecondsToMicros(100);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(bucket.TryAcquire(later)) << i;
  EXPECT_FALSE(bucket.TryAcquire(later));
}

TEST(TokenBucketTest, ZeroRateIsUnlimited) {
  TokenBucket bucket(0.0, 0.0);
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(bucket.TryAcquire(0));
}

TEST(AdmissionTest, PerFunctionDepthCapRejectsUnavailable) {
  AdmissionController admission(AdmissionLimits{});
  FunctionSchedParams params;
  params.max_queue_depth = 2;
  ASSERT_TRUE(admission.RegisterFunction("f", params).ok());

  EXPECT_TRUE(admission.Admit("f", 0, 0).ok());
  EXPECT_TRUE(admission.Admit("f", 0, 0).ok());
  Status third = admission.Admit("f", 0, 0);
  EXPECT_EQ(third.code(), StatusCode::kUnavailable);
  EXPECT_EQ(admission.stats().rejected_depth, 1u);

  admission.OnDequeue("f", 0);
  EXPECT_TRUE(admission.Admit("f", 0, 0).ok());
}

TEST(AdmissionTest, GlobalQueueAndByteBudgets) {
  AdmissionLimits limits;
  limits.max_queued = 3;
  AdmissionController admission(limits);
  ASSERT_TRUE(admission.RegisterFunction("a", {}).ok());
  ASSERT_TRUE(admission.RegisterFunction("b", {}).ok());

  EXPECT_TRUE(admission.Admit("a", 0, 0).ok());
  EXPECT_TRUE(admission.Admit("b", 0, 0).ok());
  EXPECT_TRUE(admission.Admit("a", 0, 0).ok());
  Status fourth = admission.Admit("b", 0, 0);
  EXPECT_EQ(fourth.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(admission.stats().rejected_global, 1u);

  AdmissionLimits byte_limits;
  byte_limits.max_queued_bytes = 1000;
  AdmissionController bytes(byte_limits);
  ASSERT_TRUE(bytes.RegisterFunction("a", {}).ok());
  EXPECT_TRUE(bytes.Admit("a", 600, 0).ok());
  EXPECT_FALSE(bytes.Admit("a", 600, 0).ok());  // 1200 > 1000
  bytes.OnDequeue("a", 600);
  EXPECT_TRUE(bytes.Admit("a", 600, 0).ok());
}

TEST(AdmissionTest, UnknownFunctionIsNotFound) {
  AdmissionController admission(AdmissionLimits{});
  EXPECT_TRUE(admission.Admit("ghost", 0, 0).IsNotFound());
}

TEST(FairQueueTest, FifoPopsInGlobalArrivalOrder) {
  FairQueue queue(PolicyKind::kFifo);
  ASSERT_TRUE(queue.RegisterFunction("a", {}).ok());
  ASSERT_TRUE(queue.RegisterFunction("b", {}).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(queue.Enqueue(Make(i % 2 ? "b" : "a"), i).ok());
  }
  uint64_t last_seq = 0;
  for (int i = 0; i < 10; ++i) {
    QueuedRequest r;
    ASSERT_TRUE(queue.PopNext(&r));
    if (i > 0) EXPECT_GT(r.seq, last_seq) << "FIFO must follow arrival order";
    EXPECT_EQ(r.dispatch_seq, static_cast<uint64_t>(i));
    last_seq = r.seq;
  }
  QueuedRequest r;
  EXPECT_FALSE(queue.PopNext(&r));
}

TEST(FairQueueTest, WeightedFairRatioUnderSaturation) {
  FairQueue queue(PolicyKind::kWeightedFair);
  FunctionSchedParams heavy;
  heavy.weight = 2.0;
  FunctionSchedParams light;
  light.weight = 1.0;
  ASSERT_TRUE(queue.RegisterFunction("heavy", heavy).ok());
  ASSERT_TRUE(queue.RegisterFunction("light", light).ok());

  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(queue.Enqueue(Make("heavy"), i).ok());
    ASSERT_TRUE(queue.Enqueue(Make("light"), i).ok());
  }
  // Both stay backlogged for the first 300 pops; service there must follow
  // the 2:1 weights.
  int heavy_count = 0, light_count = 0;
  for (int i = 0; i < 300; ++i) {
    QueuedRequest r;
    ASSERT_TRUE(queue.PopNext(&r));
    (r.function == "heavy" ? heavy_count : light_count)++;
  }
  ASSERT_GT(light_count, 0);
  const double ratio = static_cast<double>(heavy_count) / light_count;
  EXPECT_NEAR(ratio, 2.0, 0.3) << heavy_count << ":" << light_count;
}

TEST(FairQueueTest, LowWeightFunctionIsNotStarved) {
  FairQueue queue(PolicyKind::kWeightedFair);
  FunctionSchedParams huge;
  huge.weight = 100.0;
  ASSERT_TRUE(queue.RegisterFunction("huge", huge).ok());
  ASSERT_TRUE(queue.RegisterFunction("tiny", {}).ok());  // weight 1

  for (int i = 0; i < 400; ++i) ASSERT_TRUE(queue.Enqueue(Make("huge"), i).ok());
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(queue.Enqueue(Make("tiny"), i).ok());

  // Within 102 pops (one virtual-time unit at weight 100 + slack) the tiny
  // function must receive service: finish tags bound its wait.
  bool tiny_served = false;
  for (int i = 0; i < 102 && !tiny_served; ++i) {
    QueuedRequest r;
    ASSERT_TRUE(queue.PopNext(&r));
    tiny_served = r.function == "tiny";
  }
  EXPECT_TRUE(tiny_served) << "low-weight function starved";
}

TEST(FairQueueTest, EdfPopsEarliestDeadlineFirst) {
  FairQueue queue(PolicyKind::kDeadlineEdf);
  ASSERT_TRUE(queue.RegisterFunction("a", {}).ok());
  ASSERT_TRUE(queue.RegisterFunction("b", {}).ok());
  ASSERT_TRUE(queue.Enqueue(Make("a", "m0", "u0", -1, 5000), 0).ok());
  ASSERT_TRUE(queue.Enqueue(Make("b", "m0", "u0", -1, 1000), 0).ok());
  ASSERT_TRUE(queue.Enqueue(Make("a", "m0", "u0", -1, 3000), 0).ok());
  ASSERT_TRUE(queue.Enqueue(Make("b", "m0", "u0", -1, kNoDeadline), 0).ok());

  TimeMicros last = 0;
  for (int i = 0; i < 4; ++i) {
    QueuedRequest r;
    ASSERT_TRUE(queue.PopNext(&r));
    EXPECT_GE(r.deadline, last);
    last = r.deadline;
  }
  EXPECT_EQ(last, kNoDeadline);  // deadline-less work runs last
}

TEST(FairQueueTest, DefaultSlackAssignsDeadlines) {
  FairQueue queue(PolicyKind::kDeadlineEdf);
  FunctionSchedParams params;
  params.default_slack = 2000;
  ASSERT_TRUE(queue.RegisterFunction("a", params).ok());
  ASSERT_TRUE(queue.Enqueue(Make("a"), 1000).ok());
  QueuedRequest r;
  ASSERT_TRUE(queue.PopNext(&r));
  EXPECT_EQ(r.deadline, 3000);
}

TEST(FairQueueTest, PriorityClassesAreStrict) {
  FairQueue queue(PolicyKind::kFifo);
  ASSERT_TRUE(queue.RegisterFunction("a", {}).ok());
  ASSERT_TRUE(queue.Enqueue(Make("a", "m0", "u0", /*priority=*/2), 0).ok());
  ASSERT_TRUE(queue.Enqueue(Make("a", "m0", "u0", /*priority=*/1), 1).ok());
  ASSERT_TRUE(queue.Enqueue(Make("a", "m0", "u0", /*priority=*/0), 2).ok());

  QueuedRequest r;
  ASSERT_TRUE(queue.PopNext(&r));
  EXPECT_EQ(r.priority, 0);  // latest arrival, highest class, first out
  ASSERT_TRUE(queue.PopNext(&r));
  EXPECT_EQ(r.priority, 1);
  ASSERT_TRUE(queue.PopNext(&r));
  EXPECT_EQ(r.priority, 2);
}

TEST(SchedulerTest, RateLimitedSubmitRejectsTyped) {
  ManualClock clock;
  SchedulerConfig config;
  RequestScheduler scheduler(config, &clock);
  FunctionSchedParams params;
  params.rate_per_s = 2.0;
  params.burst = 2.0;
  ASSERT_TRUE(scheduler.RegisterFunction("f", params).ok());

  EXPECT_TRUE(scheduler.Submit(Make("f"), 0).ok());
  EXPECT_TRUE(scheduler.Submit(Make("f"), 0).ok());
  Status third = scheduler.Submit(Make("f"), 0);
  EXPECT_TRUE(third.IsResourceExhausted());
  EXPECT_EQ(scheduler.stats().rejected_rate, 1u);

  clock.Advance(SecondsToMicros(1));  // 2 tokens back
  EXPECT_TRUE(scheduler.Submit(Make("f"), 0).ok());
}

TEST(SchedulerTest, PopBatchCoalescesUpToLimit) {
  ManualClock clock;
  RequestScheduler scheduler(SchedulerConfig{}, &clock);
  FunctionSchedParams params;
  params.max_batch = 4;
  ASSERT_TRUE(scheduler.RegisterFunction("f", params).ok());

  for (int i = 0; i < 6; ++i) ASSERT_TRUE(scheduler.Submit(Make("f"), 0).ok());
  EXPECT_EQ(scheduler.PopBatch().size(), 4u);
  EXPECT_EQ(scheduler.PopBatch().size(), 2u);
  EXPECT_TRUE(scheduler.PopBatch().empty());

  const SchedStats stats = scheduler.stats();
  EXPECT_EQ(stats.dispatched, 6u);
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.max_batch_size, 4u);
  EXPECT_DOUBLE_EQ(stats.avg_batch_size, 3.0);
}

TEST(SchedulerTest, BatcherNeverMixesModelsOrSessions) {
  ManualClock clock;
  RequestScheduler scheduler(SchedulerConfig{}, &clock);
  FunctionSchedParams params;
  params.max_batch = 8;
  ASSERT_TRUE(scheduler.RegisterFunction("f", params).ok());

  // Interleave two models and two sessions.
  int submitted = 0;
  for (int i = 0; i < 24; ++i) {
    const std::string model = (i % 3 == 0) ? "m1" : "m0";
    const std::string session = (i % 2 == 0) ? "alice" : "bob";
    ASSERT_TRUE(scheduler.Submit(Make("f", model, session), 0).ok());
    submitted++;
  }

  int dispatched = 0;
  for (;;) {
    std::vector<QueuedRequest> batch = scheduler.PopBatch();
    if (batch.empty()) break;
    for (const QueuedRequest& r : batch) {
      EXPECT_EQ(r.model_id, batch.front().model_id) << "batch mixed models";
      EXPECT_EQ(r.session_id, batch.front().session_id) << "batch mixed sessions";
    }
    dispatched += static_cast<int>(batch.size());
  }
  EXPECT_EQ(dispatched, submitted);  // coalescing loses nothing
  EXPECT_EQ(scheduler.TotalDepth(), 0u);
}

/// Regression for the PR 3 batcher fairness bug: a coalesced batch used to
/// charge only the head's 1/weight of virtual time, so a batch-eligible
/// function over-served any unbatched competitor under WeightedFair (a full
/// batch of 8 consumed 8 requests of service for one request's worth of
/// virtual time — 16:1 completions here instead of 2:1). With batches
/// charged batch_size/weight, 2:1 weights must yield 2:1 *completions* even
/// when only the heavy function batches.
TEST(SchedulerTest, WeightedFairHoldsWithBatchingEnabled) {
  ManualClock clock;
  SchedulerConfig config;
  config.policy = PolicyKind::kWeightedFair;
  RequestScheduler scheduler(config, &clock);

  FunctionSchedParams heavy;
  heavy.weight = 2.0;
  heavy.max_batch = 8;  // single-model single-session stream: full batches
  FunctionSchedParams light;
  light.weight = 1.0;   // max_batch = 1: dispatches one request at a time
  ASSERT_TRUE(scheduler.RegisterFunction("heavy", heavy).ok());
  ASSERT_TRUE(scheduler.RegisterFunction("light", light).ok());

  for (int i = 0; i < 320; ++i) {
    ASSERT_TRUE(scheduler.Submit(Make("heavy"), 0).ok());
    if (i < 160) ASSERT_TRUE(scheduler.Submit(Make("light"), 0).ok());
  }

  // Count completed requests per function over the first 240 dispatched
  // requests — at a fair 2:1 that is 160 heavy + 80 light, so both functions
  // stay backlogged throughout the window.
  int heavy_done = 0, light_done = 0;
  while (heavy_done + light_done < 240) {
    std::vector<QueuedRequest> batch = scheduler.PopBatch();
    ASSERT_FALSE(batch.empty());
    (batch.front().function == "heavy" ? heavy_done : light_done) +=
        static_cast<int>(batch.size());
  }
  ASSERT_GT(light_done, 0);
  const double ratio = static_cast<double>(heavy_done) / light_done;
  EXPECT_NEAR(ratio, 2.0, 0.2) << heavy_done << ":" << light_done;

  const SchedStats stats = scheduler.stats();
  EXPECT_GE(stats.max_batch_size, 8u);
}

/// DeadlineEdf must shed work whose deadline already passed at dispatch time
/// (not just order by deadline): expired requests come back via the `expired`
/// out-param, counted in SchedStats.drops, and are never part of a batch.
TEST(SchedulerTest, EdfShedsExpiredRequestsAtDispatch) {
  ManualClock clock;
  SchedulerConfig config;
  config.policy = PolicyKind::kDeadlineEdf;
  RequestScheduler scheduler(config, &clock);
  ASSERT_TRUE(scheduler.RegisterFunction("f", {}).ok());

  ASSERT_TRUE(scheduler.Submit(Make("f", "m0", "u0", -1, /*deadline=*/1000), 0).ok());
  ASSERT_TRUE(scheduler.Submit(Make("f", "m0", "u0", -1, /*deadline=*/1500), 0).ok());
  ASSERT_TRUE(scheduler.Submit(Make("f", "m0", "u0", -1, /*deadline=*/50000), 0).ok());
  ASSERT_TRUE(scheduler.Submit(Make("f"), 0).ok());  // no deadline: never shed

  clock.Advance(2000);  // the first two deadlines are now in the past

  std::vector<QueuedRequest> expired;
  std::vector<QueuedRequest> batch = scheduler.PopBatch(&expired);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.front().deadline, 50000);  // first live head
  ASSERT_EQ(expired.size(), 2u);
  EXPECT_EQ(expired[0].deadline, 1000);
  EXPECT_EQ(expired[1].deadline, 1500);

  batch = scheduler.PopBatch(&expired);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.front().deadline, kNoDeadline);
  EXPECT_EQ(expired.size(), 2u);  // nothing new shed

  const SchedStats stats = scheduler.stats();
  EXPECT_EQ(stats.drops, 2u);
  EXPECT_EQ(stats.dispatched, 2u);  // shed work never counts as dispatched
  EXPECT_EQ(scheduler.TotalDepth(), 0u);  // accounting balanced either way
}

TEST(SchedulerTest, QueueWaitPercentilesPerClass) {
  ManualClock clock;
  RequestScheduler scheduler(SchedulerConfig{}, &clock);
  ASSERT_TRUE(scheduler.RegisterFunction("f", {}).ok());

  ASSERT_TRUE(scheduler.Submit(Make("f", "m0", "u0", /*priority=*/0), 0).ok());
  clock.Advance(1000);
  ASSERT_TRUE(scheduler.Submit(Make("f", "m0", "u0", /*priority=*/2), 0).ok());
  clock.Advance(500);

  // P0 popped first after waiting 1500us; P2 after 500us.
  ASSERT_EQ(scheduler.PopBatch().size(), 1u);
  ASSERT_EQ(scheduler.PopBatch().size(), 1u);
  const SchedStats stats = scheduler.stats();
  EXPECT_EQ(stats.wait[0].count, 1u);
  EXPECT_EQ(stats.wait[0].p50, 1500);
  EXPECT_EQ(stats.wait[2].count, 1u);
  EXPECT_EQ(stats.wait[2].p50, 500);
}

/// ThreadSanitizer target: many producers, several consumers, two functions
/// with batching on one of them. Invariants: nothing lost, nothing
/// double-dispatched, batches stay pure, accounting balances.
TEST(SchedulerConcurrencyTest, MultiProducerMultiConsumerStress) {
  RequestScheduler scheduler(SchedulerConfig{});
  FunctionSchedParams batched;
  batched.max_batch = 4;
  batched.weight = 2.0;
  ASSERT_TRUE(scheduler.RegisterFunction("a", batched).ok());
  ASSERT_TRUE(scheduler.RegisterFunction("b", {}).ok());

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  std::atomic<int> submitted{0};
  std::atomic<bool> producing{true};
  std::atomic<int> dispatched{0};
  std::atomic<int> impure_batches{0};
  std::atomic<uint64_t> seq_seen_twice{0};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const std::string fn = (i % 3 == 0) ? "b" : "a";
        const std::string model = (i % 5 == 0) ? "m1" : "m0";
        if (scheduler.Submit(Make(fn, model, "u" + std::to_string(p % 2)), 16)
                .ok()) {
          submitted.fetch_add(1);
        }
      }
    });
  }

  std::mutex seen_mutex;
  std::set<uint64_t> seen;
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      for (;;) {
        std::vector<QueuedRequest> batch = scheduler.PopBatch();
        if (batch.empty()) {
          if (!producing.load() && scheduler.TotalDepth() == 0) return;
          std::this_thread::yield();
          continue;
        }
        for (const QueuedRequest& r : batch) {
          if (r.model_id != batch.front().model_id ||
              r.session_id != batch.front().session_id ||
              r.function != batch.front().function) {
            impure_batches.fetch_add(1);
          }
        }
        {
          std::lock_guard<std::mutex> lock(seen_mutex);
          for (const QueuedRequest& r : batch) {
            if (!seen.insert(r.seq).second) seq_seen_twice.fetch_add(1);
          }
        }
        dispatched.fetch_add(static_cast<int>(batch.size()));
      }
    });
  }

  for (auto& t : producers) t.join();
  producing.store(false);
  for (auto& t : consumers) t.join();

  EXPECT_EQ(dispatched.load(), submitted.load());
  EXPECT_EQ(impure_batches.load(), 0);
  EXPECT_EQ(seq_seen_twice.load(), 0u);
  EXPECT_EQ(scheduler.TotalDepth(), 0u);

  const SchedStats stats = scheduler.stats();
  EXPECT_EQ(stats.dispatched, static_cast<uint64_t>(dispatched.load()));
  for (const FunctionQueueStats& f : stats.functions) {
    EXPECT_EQ(f.enqueued, f.dispatched) << f.function;
    EXPECT_EQ(f.depth, 0u) << f.function;
  }
}

/// Under the Fifo policy, dispatch order must equal admission order even with
/// concurrent submitters (the policy-ordered-wakeup regression: the old
/// window woke blocked submitters in arbitrary mutex order).
TEST(SchedulerConcurrencyTest, FifoDispatchMatchesAdmissionOrder) {
  RequestScheduler scheduler(SchedulerConfig{});
  ASSERT_TRUE(scheduler.RegisterFunction("f", {}).ok());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(scheduler.Submit(Make("f"), 0).ok());
      }
    });
  }
  for (auto& t : threads) t.join();

  uint64_t last_seq = 0;
  bool first = true;
  for (;;) {
    std::vector<QueuedRequest> batch = scheduler.PopBatch();
    if (batch.empty()) break;
    ASSERT_EQ(batch.size(), 1u);
    if (!first) {
      EXPECT_GT(batch[0].seq, last_seq)
          << "FIFO dispatched out of admission order";
    }
    first = false;
    last_seq = batch[0].seq;
  }
}

TEST(SchedulerTest, ClassMaskHelpers) {
  EXPECT_EQ(ClassMaskUpTo(0), 0u);
  EXPECT_EQ(ClassMaskUpTo(1), ClassMaskOf(0));
  EXPECT_EQ(ClassMaskUpTo(2), ClassMaskOf(0) | ClassMaskOf(1));
  EXPECT_EQ(ClassMaskUpTo(kNumPriorityClasses), kAllClasses);
  EXPECT_EQ(ClassMaskUpTo(kNumPriorityClasses + 5), kAllClasses);
}

TEST(SchedulerTest, MaskedPopBatchServesOnlyRequestedClasses) {
  ManualClock clock;
  RequestScheduler scheduler(SchedulerConfig{}, &clock);
  ASSERT_TRUE(scheduler.RegisterFunction("f", {}).ok());

  ASSERT_TRUE(scheduler.Submit(Make("f", "m0", "u0", /*priority=*/0), 0).ok());
  ASSERT_TRUE(scheduler.Submit(Make("f", "m0", "u0", /*priority=*/1), 0).ok());
  ASSERT_TRUE(scheduler.Submit(Make("f", "m0", "u0", /*priority=*/0), 0).ok());

  EXPECT_EQ(scheduler.DepthInClasses(ClassMaskOf(0)), 2u);
  EXPECT_EQ(scheduler.DepthInClasses(ClassMaskOf(1)), 1u);
  EXPECT_EQ(scheduler.DepthInClasses(kAllClasses), 3u);

  // A bulk dispatcher masked to class 1 must never pop the class-0 backlog.
  const ClassMask bulk = kAllClasses & ~ClassMaskOf(0);
  std::vector<QueuedRequest> batch = scheduler.PopBatch(bulk, nullptr);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].priority, 1);
  EXPECT_TRUE(scheduler.PopBatch(bulk, nullptr).empty());
  EXPECT_EQ(scheduler.DepthInClasses(ClassMaskOf(0)), 2u);

  batch = scheduler.PopBatch(ClassMaskOf(0), nullptr);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].priority, 0);
  EXPECT_EQ(scheduler.TotalDepth(), 1u);
}

TEST(SchedulerTest, PopOneBypassesBatchCoalescing) {
  ManualClock clock;
  RequestScheduler scheduler(SchedulerConfig{}, &clock);
  FunctionSchedParams params;
  params.max_batch = 4;
  params.priority = 0;
  ASSERT_TRUE(scheduler.RegisterFunction("f", params).ok());

  // Four coalescible same-model requests: the RT pop takes exactly one —
  // lookahead batching is a throughput tool the latency tier must not pay.
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(scheduler.Submit(Make("f"), 0).ok());
  QueuedRequest out;
  ASSERT_TRUE(scheduler.PopOne(ClassMaskOf(0), &out, nullptr));
  EXPECT_EQ(out.priority, 0);
  EXPECT_EQ(scheduler.TotalDepth(), 3u);
  EXPECT_EQ(scheduler.stats().dispatched, 1u);

  // Masked away: the pop must refuse even with a queued backlog.
  EXPECT_FALSE(scheduler.PopOne(ClassMaskOf(1), &out, nullptr));
  EXPECT_EQ(scheduler.TotalDepth(), 3u);
}

TEST(SchedulerTest, PopOneShedsExpiredDeadlines) {
  ManualClock clock;
  SchedulerConfig config;
  config.policy = PolicyKind::kDeadlineEdf;
  RequestScheduler scheduler(config, &clock);
  FunctionSchedParams params;
  params.priority = 0;
  ASSERT_TRUE(scheduler.RegisterFunction("f", params).ok());

  ASSERT_TRUE(scheduler
                  .Submit(Make("f", "m0", "u0", 0, /*deadline=*/100), 0)
                  .ok());
  ASSERT_TRUE(scheduler
                  .Submit(Make("f", "m0", "u0", 0, /*deadline=*/SecondsToMicros(10)), 0)
                  .ok());
  clock.Advance(200);  // first deadline passed while queued

  std::vector<QueuedRequest> expired;
  QueuedRequest out;
  ASSERT_TRUE(scheduler.PopOne(kAllClasses, &out, &expired));
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].deadline, 100);
  EXPECT_EQ(out.deadline, SecondsToMicros(10));
  EXPECT_EQ(scheduler.stats().drops, 1u);
}

TEST(SchedulerTest, CoalesceKeepsPerClassDepthConsistent) {
  ManualClock clock;
  RequestScheduler scheduler(SchedulerConfig{}, &clock);
  FunctionSchedParams params;
  params.max_batch = 4;
  params.priority = 2;
  ASSERT_TRUE(scheduler.RegisterFunction("f", params).ok());

  for (int i = 0; i < 6; ++i) ASSERT_TRUE(scheduler.Submit(Make("f"), 0).ok());
  ASSERT_EQ(scheduler.DepthInClasses(ClassMaskOf(2)), 6u);
  // Coalescing pulls companions out from under the per-class counters too.
  EXPECT_EQ(scheduler.PopBatch().size(), 4u);
  EXPECT_EQ(scheduler.DepthInClasses(ClassMaskOf(2)), 2u);
  EXPECT_EQ(scheduler.PopBatch().size(), 2u);
  EXPECT_EQ(scheduler.DepthInClasses(ClassMaskOf(2)), 0u);
  EXPECT_EQ(scheduler.DepthInClasses(kAllClasses), 0u);
}

}  // namespace
}  // namespace sesemi::sched
