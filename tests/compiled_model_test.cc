// Pre-packing and compiled-pipeline coverage: packed-vs-naive GEMM parity on
// shapes off the panel grid, compiled packed-vs-in-place execution parity,
// batch-parallel determinism (run under TSan in CI), the zero-allocation
// steady-state contract, and packed-weight memory accounting.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include "common/parallel_for.h"
#include "inference/compiled_model.h"
#include "inference/framework.h"
#include "inference/gemm.h"
#include "inference/ops.h"
#include "model/zoo.h"

// ---------------------------------------------------------------- alloc probe
// Global operator new override (this test binary only): counts allocations
// while armed, so the zero-allocation claim on CompiledModel::ExecuteInto is
// asserted, not just documented.

namespace {
std::atomic<bool> g_count_allocations{false};
std::atomic<uint64_t> g_allocation_count{0};

void* CountedAlloc(std::size_t n) {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t n) { return CountedAlloc(n); }
void* operator new[](std::size_t n) { return CountedAlloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace sesemi::inference {
namespace {

using model::Architecture;
using model::TensorShape;
using model::ZooSpec;

float MaxScaledDiff(const std::vector<float>& a, const std::vector<float>& b) {
  float worst = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]) / (1.0f + std::abs(a[i])));
  }
  return worst;
}

std::vector<float> RandomVec(size_t n, uint32_t seed) {
  std::vector<float> v(n);
  uint32_t state = seed * 2654435761u + 1;
  for (size_t i = 0; i < n; ++i) {
    state = state * 1664525u + 1013904223u;
    v[i] = static_cast<float>(static_cast<int32_t>(state >> 8) % 2001 - 1000) / 500.0f;
  }
  return v;
}

// Reference GEMM: plain triple loop, ascending k, bias-seeded like the fast
// kernels.
void GemmRef(const float* a, const float* b, const float* bias, float* c,
             int m, int n, int k) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float acc = bias != nullptr ? bias[j] : 0.0f;
      for (int kk = 0; kk < k; ++kk) {
        acc += a[static_cast<size_t>(i) * k + kk] * b[static_cast<size_t>(kk) * n + j];
      }
      c[static_cast<size_t>(i) * n + j] = acc;
    }
  }
}

// ------------------------------------------------------ packed GEMM parity
// Shapes deliberately off the panel grid: N not a multiple of 16 (ragged
// edge panel), K not a multiple of any kernel depth, M around the 6-row
// micro-tile, and M == 1 (the packed GEMV).

struct GemmCase {
  int m, n, k;
};

class PackedGemmParityTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(PackedGemmParityTest, PrepackedMatchesReferenceAndUnpacked) {
  const GemmCase p = GetParam();
  std::vector<float> a = RandomVec(static_cast<size_t>(p.m) * p.k, 3);
  std::vector<float> b = RandomVec(static_cast<size_t>(p.k) * p.n, 4);
  std::vector<float> bias = RandomVec(p.n, 5);

  std::vector<float> packed(gemm::PackedBElements(p.k, p.n), -7.0f);
  gemm::PackB(b.data(), p.k, p.n, packed.data());

  std::vector<float> want(static_cast<size_t>(p.m) * p.n);
  std::vector<float> unpacked(want.size()), got(want.size());
  GemmRef(a.data(), b.data(), bias.data(), want.data(), p.m, p.n, p.k);
  gemm::Gemm(a.data(), b.data(), bias.data(), unpacked.data(), p.m, p.n, p.k);
  gemm::GemmPrepacked(a.data(), packed.data(), bias.data(), got.data(), p.m,
                      p.n, p.k);

  EXPECT_LE(MaxScaledDiff(want, got), 1e-5f)
      << p.m << "x" << p.n << "x" << p.k << " vs reference";
  EXPECT_LE(MaxScaledDiff(unpacked, got), 1e-5f)
      << p.m << "x" << p.n << "x" << p.k << " vs unpacked Gemm";
}

INSTANTIATE_TEST_SUITE_P(
    OddShapes, PackedGemmParityTest,
    ::testing::Values(GemmCase{1, 1, 1}, GemmCase{1, 17, 5}, GemmCase{1, 1000, 96},
                      GemmCase{2, 15, 7}, GemmCase{5, 16, 16}, GemmCase{6, 33, 9},
                      GemmCase{7, 100, 13}, GemmCase{13, 31, 257},
                      GemmCase{48, 64, 20}, GemmCase{24, 10, 515}));

TEST(PackedGemmTest, PackedSizeRoundsUpToWholePanels) {
  EXPECT_EQ(gemm::PackedBElements(3, 16), 3u * 16u);
  EXPECT_EQ(gemm::PackedBElements(3, 17), 3u * 32u);  // 2 panels
  EXPECT_EQ(gemm::PackedBElements(5, 1), 5u * 16u);   // 1 zero-padded panel
  EXPECT_EQ(gemm::PackedBElements(1, 33), 1u * 48u);  // 3 panels
}

TEST(PackedGemmTest, PackBZeroPadsRaggedEdge) {
  // K=2, N=17: second panel holds column 16 and 15 zero columns.
  std::vector<float> b(2 * 17);
  for (size_t i = 0; i < b.size(); ++i) b[i] = static_cast<float>(i + 1);
  std::vector<float> packed(gemm::PackedBElements(2, 17), -1.0f);
  gemm::PackB(b.data(), 2, 17, packed.data());
  // Panel 0, row k: columns 0..15 of b row k.
  for (int kk = 0; kk < 2; ++kk) {
    for (int j = 0; j < 16; ++j) {
      EXPECT_EQ(packed[kk * 16 + j], b[kk * 17 + j]);
    }
  }
  // Panel 1 (starts at 2*16): column 16 then zeros.
  for (int kk = 0; kk < 2; ++kk) {
    EXPECT_EQ(packed[32 + kk * 16], b[kk * 17 + 16]);
    for (int j = 1; j < 16; ++j) EXPECT_EQ(packed[32 + kk * 16 + j], 0.0f);
  }
}

struct ConvCase {
  int h, w, c, kernel, stride, out_c;
};

class PackedConvParityTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(PackedConvParityTest, PrepackedMatchesNaive) {
  const ConvCase p = GetParam();
  TensorShape shape{p.h, p.w, p.c};
  const int k = p.kernel * p.kernel * p.c;
  std::vector<float> in = RandomVec(shape.elements(), 11);
  std::vector<float> weights =
      RandomVec(static_cast<size_t>(k) * p.out_c + p.out_c, 12);
  const int out_h = (p.h + p.stride - 1) / p.stride;
  const int out_w = (p.w + p.stride - 1) / p.stride;
  const size_t out_n = static_cast<size_t>(out_h) * out_w * p.out_c;

  std::vector<float> want(out_n), got(out_n);
  ops::Conv2dNaive(in.data(), shape, weights.data(), p.kernel, p.stride,
                   p.out_c, want.data());

  std::vector<float> packed(gemm::PackedBElements(k, p.out_c));
  gemm::PackB(weights.data(), k, p.out_c, packed.data());
  const float* bias = weights.data() + static_cast<size_t>(k) * p.out_c;
  std::vector<float> scratch(
      gemm::Conv2dScratchElements(shape, p.kernel, p.stride));
  gemm::Conv2dGemmPrepacked(in.data(), shape, packed.data(), bias, p.kernel,
                            p.stride, p.out_c, got.data(), scratch.data());
  EXPECT_LE(MaxScaledDiff(want, got), 1e-5f)
      << p.h << "x" << p.w << "x" << p.c << " k" << p.kernel << " s" << p.stride
      << " oc" << p.out_c;
}

INSTANTIATE_TEST_SUITE_P(
    OddShapes, PackedConvParityTest,
    ::testing::Values(ConvCase{7, 9, 5, 3, 1, 17}, ConvCase{8, 8, 3, 3, 2, 15},
                      ConvCase{16, 16, 8, 1, 1, 7}, ConvCase{5, 5, 2, 5, 1, 3},
                      ConvCase{9, 9, 24, 3, 1, 40}, ConvCase{1, 1, 16, 3, 1, 16},
                      ConvCase{13, 13, 6, 1, 2, 7}, ConvCase{12, 12, 32, 1, 1, 48}));

// ------------------------------------------------------ compiled pipeline

model::ModelGraph BuildGraph(Architecture arch, double scale) {
  ZooSpec spec;
  spec.arch = arch;
  spec.scale = scale;
  spec.input_hw = 16;
  auto graph = model::BuildModel(spec);
  EXPECT_TRUE(graph.ok()) << graph.status().ToString();
  return std::move(*graph);
}

TEST(CompiledModelTest, PackedAndInPlaceExecutionAgree) {
  struct {
    Architecture arch;
    double scale;
  } cases[] = {{Architecture::kMbNet, 0.002},
               {Architecture::kRsNet, 0.002},
               {Architecture::kDsNet, 0.002},
               {Architecture::kHybNet, 0.02}};
  for (const auto& c : cases) {
    model::ModelGraph graph = BuildGraph(c.arch, c.scale);
    CompiledModel::Options packed_opts;
    packed_opts.pack_weights = true;
    CompiledModel::Options inplace_opts;
    inplace_opts.pack_weights = false;
    auto packed = CompiledModel::Compile(graph, packed_opts);
    auto inplace = CompiledModel::Compile(graph, inplace_opts);
    ASSERT_TRUE(packed.ok() && inplace.ok());
    EXPECT_GT(packed->packed_weight_bytes(), 0u);
    EXPECT_EQ(inplace->packed_weight_bytes(), 0u);

    Bytes input = model::GenerateRandomInput(graph, 9);
    std::vector<float> arena_a(packed->arena_elements());
    std::vector<float> arena_b(inplace->arena_elements());
    auto out_a = packed->Execute(input, arena_a.data());
    auto out_b = inplace->Execute(input, arena_b.data());
    ASSERT_TRUE(out_a.ok() && out_b.ok());
    auto sa = model::ParseOutput(*out_a);
    auto sb = model::ParseOutput(*out_b);
    ASSERT_TRUE(sa.ok() && sb.ok());
    EXPECT_LE(MaxScaledDiff(*sa, *sb), 1e-5f) << model::ToString(c.arch);
  }
}

TEST(CompiledModelTest, BatchArenaCoversScratchLanes) {
  model::ModelGraph graph = BuildGraph(Architecture::kRsNet, 0.002);
  auto compiled = CompiledModel::Compile(std::move(graph));
  ASSERT_TRUE(compiled.ok());
  const uint64_t slots = compiled->arena_elements() - compiled->scratch_elements();
  for (int batch : {1, 2, 8, 64}) {
    const int lanes = compiled->batch_scratch_lanes(batch);
    EXPECT_GE(lanes, 1);
    EXPECT_LE(lanes, std::max(1, std::min(batch, ParallelismDegree())));
    EXPECT_EQ(compiled->batch_arena_elements(batch),
              slots * batch + compiled->scratch_elements() * lanes);
  }
}

// Batch-parallel determinism: every sample of every batch size must equal
// the unbatched execution bit-for-bit, no matter how the pool carves the
// batch up. Run under TSan in CI, where the per-lane im2col scratch would
// light up as a data race if two samples ever shared a lane.
TEST(CompiledModelTest, ExecuteBatchIsDeterministicAndMatchesUnbatched) {
  model::ModelGraph graph = BuildGraph(Architecture::kHybNet, 0.02);
  auto compiled = CompiledModel::Compile(std::move(graph));
  ASSERT_TRUE(compiled.ok());

  constexpr int kMaxBatch = 6;
  std::vector<Bytes> inputs;
  std::vector<Bytes> want;
  std::vector<float> arena(compiled->arena_elements());
  for (int b = 0; b < kMaxBatch; ++b) {
    inputs.push_back(model::GenerateRandomInput(compiled->graph(), 40 + b));
    auto out = compiled->Execute(inputs.back(), arena.data());
    ASSERT_TRUE(out.ok());
    want.push_back(std::move(*out));
  }

  for (int batch : {2, 3, kMaxBatch}) {
    std::vector<ByteSpan> spans(inputs.begin(), inputs.begin() + batch);
    std::vector<float> batch_arena(compiled->batch_arena_elements(batch));
    for (int repeat = 0; repeat < 3; ++repeat) {
      std::vector<Bytes> outputs;
      ASSERT_TRUE(
          compiled->ExecuteBatch(spans, batch_arena.data(), &outputs).ok());
      ASSERT_EQ(outputs.size(), static_cast<size_t>(batch));
      for (int b = 0; b < batch; ++b) {
        EXPECT_EQ(outputs[b], want[b]) << "batch " << batch << " sample " << b;
      }
    }
  }
}

TEST(CompiledModelTest, ConcurrentBatchesShareThePoolSafely) {
  // Several runtimes batching concurrently over one shared compiled model —
  // the TSan target for the batch fan-out plus the immutable-artifact claim.
  model::ModelGraph graph = BuildGraph(Architecture::kMbNet, 0.002);
  auto framework = CreateFramework(FrameworkKind::kTvm);
  auto loaded = framework->WrapModel(std::move(graph));
  ASSERT_TRUE(loaded.ok());

  constexpr int kThreads = 4;
  constexpr int kBatch = 5;
  std::vector<Bytes> inputs;
  for (int b = 0; b < kBatch; ++b) {
    inputs.push_back(model::GenerateRandomInput((*loaded)->graph(), 70 + b));
  }
  // Reference outputs from a single runtime.
  auto ref_runtime = framework->CreateRuntime(*loaded);
  ASSERT_TRUE(ref_runtime.ok());
  std::vector<Bytes> want;
  for (const Bytes& input : inputs) {
    auto out = (*ref_runtime)->Execute(input);
    ASSERT_TRUE(out.ok());
    want.push_back(std::move(*out));
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto runtime = framework->CreateRuntime(*loaded);
      if (!runtime.ok()) {
        failures.fetch_add(1);
        return;
      }
      std::vector<ByteSpan> spans(inputs.begin(), inputs.end());
      for (int repeat = 0; repeat < 5; ++repeat) {
        auto outputs = (*runtime)->ExecuteBatch(spans);
        if (!outputs.ok() || outputs->size() != inputs.size()) {
          failures.fetch_add(1);
          return;
        }
        for (size_t b = 0; b < want.size(); ++b) {
          if ((*outputs)[b] != want[b]) failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(CompiledModelTest, SteadyStateExecuteMakesZeroHeapAllocations) {
  model::ModelGraph graph = BuildGraph(Architecture::kRsNet, 0.002);
  auto compiled = CompiledModel::Compile(std::move(graph));
  ASSERT_TRUE(compiled.ok());

  Bytes input = model::GenerateRandomInput(compiled->graph(), 21);
  std::vector<float> arena(compiled->arena_elements());
  std::vector<float> out(compiled->output_elements());
  // Warm once (first call touches nothing lazily today, but keep the probe
  // honest about steady state rather than first-run).
  ASSERT_TRUE(compiled->ExecuteInto(input, arena.data(), out.data()).ok());

  g_allocation_count.store(0);
  g_count_allocations.store(true);
  for (int i = 0; i < 5; ++i) {
    Status status = compiled->ExecuteInto(input, arena.data(), out.data());
    if (!status.ok()) break;
  }
  g_count_allocations.store(false);
  EXPECT_EQ(g_allocation_count.load(), 0u)
      << "steady-state ExecuteInto must not touch the heap";
}

TEST(CompiledModelTest, PackedBytesCountedInLoadedModelFootprint) {
  // The packed panels are part of the compiled artifact the enclave charges
  // at MODEL_LOAD: µTVM's loaded model counts them, µTFLM (in-place) has
  // none, and the per-runtime buffers no longer duplicate weights.
  model::ModelGraph graph = BuildGraph(Architecture::kDsNet, 0.01);
  const uint64_t weight_bytes = graph.WeightBytes();

  auto compiled = CompiledModel::Compile(graph);
  ASSERT_TRUE(compiled.ok());
  const uint64_t packed_bytes = compiled->packed_weight_bytes();
  EXPECT_GT(packed_bytes, 0u);

  auto tvm = CreateFramework(FrameworkKind::kTvm);
  auto tflm = CreateFramework(FrameworkKind::kTflm);
  auto lm_tvm = tvm->WrapModel(graph);
  auto lm_tflm = tflm->WrapModel(graph);
  ASSERT_TRUE(lm_tvm.ok() && lm_tflm.ok());
  EXPECT_GE((*lm_tvm)->memory_bytes(), weight_bytes + packed_bytes);
  EXPECT_LT((*lm_tflm)->memory_bytes(), weight_bytes + packed_bytes);
  EXPECT_EQ((*lm_tvm)->memory_bytes() - (*lm_tflm)->memory_bytes(), packed_bytes);
}

TEST(PackedGemmTest, KBlockedShapesMatchReferenceAndAreDeterministic) {
  // m > 1 with K deep enough that the packed panels blow the L2 budget —
  // these shapes take the K-blocked slab path inside GemmPrepacked (first
  // slab bias-seeded, later slabs accumulate into C). The split is invisible
  // from outside, so assert parity against the reference and the unpacked
  // kernel, plus run-to-run determinism of the blocked path itself.
  struct KCase { int m, n, k; };
  for (const KCase p : {KCase{8, 256, 1300}, KCase{2, 520, 1025},
                        KCase{6, 300, 2049}}) {
    std::vector<float> a = RandomVec(static_cast<size_t>(p.m) * p.k, 31);
    std::vector<float> b = RandomVec(static_cast<size_t>(p.k) * p.n, 32);
    std::vector<float> bias = RandomVec(p.n, 33);
    std::vector<float> packed(gemm::PackedBElements(p.k, p.n));
    gemm::PackB(b.data(), p.k, p.n, packed.data());

    std::vector<float> want(static_cast<size_t>(p.m) * p.n);
    std::vector<float> unpacked(want.size()), got(want.size()), again(want.size());
    GemmRef(a.data(), b.data(), bias.data(), want.data(), p.m, p.n, p.k);
    gemm::Gemm(a.data(), b.data(), bias.data(), unpacked.data(), p.m, p.n, p.k);
    gemm::GemmPrepacked(a.data(), packed.data(), bias.data(), got.data(), p.m,
                        p.n, p.k);
    gemm::GemmPrepacked(a.data(), packed.data(), bias.data(), again.data(),
                        p.m, p.n, p.k);

    EXPECT_LE(MaxScaledDiff(want, got), 1e-4f)
        << p.m << "x" << p.n << "x" << p.k << " vs reference";
    EXPECT_LE(MaxScaledDiff(unpacked, got), 1e-4f)
        << p.m << "x" << p.n << "x" << p.k << " vs unpacked Gemm";
    EXPECT_EQ(0, std::memcmp(got.data(), again.data(),
                             got.size() * sizeof(float)))
        << p.m << "x" << p.n << "x" << p.k << " not deterministic";
  }
}

TEST(CompiledModelTest, QuantizedSteadyStateExecuteMakesZeroHeapAllocations) {
  // The int8 tier stages activation quantization in the pre-sized scratch
  // region, so the allocation-free Execute contract must survive quantize.
  model::ModelGraph graph = BuildGraph(Architecture::kHybNet, 0.02);
  CompiledModel::Options options;
  options.quantize = true;
  auto compiled = CompiledModel::Compile(std::move(graph), options);
  ASSERT_TRUE(compiled.ok());
  ASSERT_TRUE(compiled->quantized());

  Bytes input = model::GenerateRandomInput(compiled->graph(), 22);
  std::vector<float> arena(compiled->arena_elements());
  std::vector<float> out(compiled->output_elements());
  ASSERT_TRUE(compiled->ExecuteInto(input, arena.data(), out.data()).ok());

  g_allocation_count.store(0);
  g_count_allocations.store(true);
  for (int i = 0; i < 5; ++i) {
    Status status = compiled->ExecuteInto(input, arena.data(), out.data());
    if (!status.ok()) break;
  }
  g_count_allocations.store(false);
  EXPECT_EQ(g_allocation_count.load(), 0u)
      << "quantized steady-state ExecuteInto must not touch the heap";
}

TEST(CompiledModelTest, ConcurrentQuantizedBatchesShareThePoolSafely) {
  // TSan leg for the int8 tier: several runtimes batching concurrently over
  // one shared quantized artifact (immutable int8 panels + per-layer quant
  // metadata), outputs bitwise-stable across threads and repeats.
  model::ModelGraph graph = BuildGraph(Architecture::kMbNet, 0.002);
  FrameworkOptions fopts;
  fopts.quantize = true;
  auto framework = CreateFramework(FrameworkKind::kTvm, fopts);
  auto loaded = framework->WrapModel(std::move(graph));
  ASSERT_TRUE(loaded.ok());

  constexpr int kThreads = 4;
  constexpr int kBatch = 5;
  std::vector<Bytes> inputs;
  for (int b = 0; b < kBatch; ++b) {
    inputs.push_back(model::GenerateRandomInput((*loaded)->graph(), 80 + b));
  }
  auto ref_runtime = framework->CreateRuntime(*loaded);
  ASSERT_TRUE(ref_runtime.ok());
  std::vector<Bytes> want;
  for (const Bytes& input : inputs) {
    auto out = (*ref_runtime)->Execute(input);
    ASSERT_TRUE(out.ok());
    want.push_back(std::move(*out));
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto runtime = framework->CreateRuntime(*loaded);
      if (!runtime.ok()) {
        failures.fetch_add(1);
        return;
      }
      std::vector<ByteSpan> spans(inputs.begin(), inputs.end());
      for (int repeat = 0; repeat < 5; ++repeat) {
        auto outputs = (*runtime)->ExecuteBatch(spans);
        if (!outputs.ok() || outputs->size() != inputs.size()) {
          failures.fetch_add(1);
          return;
        }
        for (size_t b = 0; b < want.size(); ++b) {
          if ((*outputs)[b] != want[b]) failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace sesemi::inference
