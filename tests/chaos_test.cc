// Chaos soak for the failure-recovery layer: every cross-component fault
// point armed at a low rate while many threads drive the platform, then the
// faults are disarmed and the platform must return to a fully-healthy steady
// state. Run under TSan and ASan in CI. The injector draws from a seeded
// generator, so a failing soak replays under the same seed.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "client/clients.h"
#include "cluster/cluster.h"
#include "common/faultpoint.h"
#include "model/zoo.h"
#include "serverless/platform.h"

namespace sesemi::serverless {
namespace {

using client::KeyServiceClient;
using client::ModelOwner;
using client::ModelUser;

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Instance().DisarmAll();
    FaultInjector::Instance().Reseed(0xc4a05);

    auto server = keyservice::StartKeyService(&ks_platform_);
    ASSERT_TRUE(server.ok());
    keyservice_ = std::move(*server);
    auto ks_client = KeyServiceClient::Connect(
        keyservice_.get(), &authority_,
        keyservice::KeyServiceEnclave::ExpectedMeasurement());
    ASSERT_TRUE(ks_client.ok());
    client_ = std::move(*ks_client);

    owner_ = std::make_unique<ModelOwner>("owner");
    user_ = std::make_unique<ModelUser>("user");
    ASSERT_TRUE(owner_->Register(client_.get()).ok());
    ASSERT_TRUE(user_->Register(client_.get()).ok());

    model::ZooSpec spec;
    spec.model_id = "m0";
    spec.scale = 0.002;
    spec.input_hw = 16;
    auto graph = model::BuildModel(spec);
    ASSERT_TRUE(graph.ok());
    graph_ = *graph;
    ASSERT_TRUE(owner_->DeployModel(client_.get(), &storage_, *graph).ok());

    PlatformConfig config;
    config.num_nodes = 2;
    // Tight retry/relaunch backoffs so the soak converges in test time; the
    // policy shape (jittered, bounded, idempotent-only) is what's under test.
    config.recovery.retry.max_attempts = 3;
    config.recovery.retry.backoff_base_micros = 50;
    config.recovery.retry.backoff_max_micros = 500;
    config.recovery.relaunch_max_attempts = 1000;
    config.recovery.relaunch_backoff_base_micros = 100;
    config.recovery.relaunch_backoff_max_micros = 1000;
    platform_ = std::make_unique<ServerlessPlatform>(config, &authority_,
                                                     &storage_, keyservice_.get());

    FunctionSpec fn;
    fn.name = "predict";
    ASSERT_TRUE(platform_->DeployFunction(fn).ok());
    sgx::Measurement es = semirt::SemirtInstance::MeasurementFor({});
    ASSERT_TRUE(owner_->GrantAccess(client_.get(), "m0", es, user_->id()).ok());
    ASSERT_TRUE(user_->ProvisionRequestKey(client_.get(), "m0", es).ok());
  }

  void TearDown() override { FaultInjector::Instance().DisarmAll(); }

  semirt::InferenceRequest BuildRequest() {
    Bytes input = model::GenerateRandomInput(graph_, 1);
    auto request = user_->BuildRequest("m0", input);
    EXPECT_TRUE(request.ok());
    return *request;
  }

  sgx::AttestationAuthority authority_;
  sgx::SgxPlatform ks_platform_{sgx::SgxGeneration::kSgx2, &authority_};
  std::unique_ptr<keyservice::KeyServiceServer> keyservice_;
  std::unique_ptr<KeyServiceClient> client_;
  std::unique_ptr<ModelOwner> owner_;
  std::unique_ptr<ModelUser> user_;
  storage::InMemoryObjectStore storage_;
  model::ModelGraph graph_;
  std::unique_ptr<ServerlessPlatform> platform_;
};

// Is `code` one of the codes the platform is allowed to surface under chaos?
// kAborted (the never-executed default) and kInternal (poisoning must be
// translated before it escapes) are specifically forbidden.
bool IsTypedChaosOutcome(StatusCode code) {
  return code == StatusCode::kOk || code == StatusCode::kUnavailable ||
         code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kResourceExhausted;
}

TEST_F(ChaosTest, SoakRecoversToSteadyState) {
  // ~1-2% fault rate across every hardened boundary, mixed codes + latency.
  auto arm = [](std::string_view point, double p, StatusCode code,
                TimeMicros latency = 0) {
    FaultConfig config;
    config.probability = p;
    config.error_code = code;
    config.latency_micros = latency;
    FaultInjector::Instance().Arm(point, config);
  };
  arm(faults::kEcallEnter, 0.02, StatusCode::kInternal);  // poisons enclaves
  arm(faults::kEnclaveHeapAlloc, 0.01, StatusCode::kUnavailable);
  arm(faults::kKeyServiceFetch, 0.02, StatusCode::kUnavailable);
  arm(faults::kRatlsHandshake, 0.01, StatusCode::kUnavailable, 200);
  arm(faults::kStorageGet, 0.02, StatusCode::kUnavailable);
  arm(faults::kServerlessDispatch, 0.01, StatusCode::kUnavailable);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 75;
  std::atomic<int> ok_count{0};
  std::atomic<int> failed_count{0};
  std::atomic<int> untyped_count{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      std::vector<std::future<InvocationResult>> futures;
      futures.reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        futures.push_back(platform_->InvokeAsync("predict", BuildRequest()));
      }
      // Every future must resolve — a lost promise would hang right here.
      for (auto& f : futures) {
        InvocationResult out = f.get();
        const StatusCode code = out.response.status().code();
        if (!IsTypedChaosOutcome(code)) untyped_count.fetch_add(1);
        if (out.response.ok()) {
          ok_count.fetch_add(1);
        } else {
          failed_count.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(untyped_count.load(), 0) << "untyped/default code escaped";
  EXPECT_GT(ok_count.load(), 0) << "chaos rate swamped the platform";
  EXPECT_EQ(ok_count.load() + failed_count.load(), kThreads * kPerThread);
  EXPECT_GT(FaultInjector::Instance().total_fires(), 0u)
      << "soak exercised no faults — rates too low for the request volume";

  // Faults off: the platform must recover without intervention. Any poisoned
  // enclave relaunches (bounded backoff), so a bounded settle loop reaches a
  // first success...
  FaultInjector::Instance().DisarmAll();
  bool recovered = false;
  for (int i = 0; i < 200 && !recovered; ++i) {
    auto r = platform_->Invoke("predict", BuildRequest());
    recovered = r.ok();
    if (!recovered) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_TRUE(recovered) << "platform did not return to service";

  // ...and steady state after it is fault-free.
  for (int i = 0; i < 20; ++i) {
    auto r = platform_->Invoke("predict", BuildRequest());
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  }

  // A sweep retires every drained poisoned enclave; the counters must agree:
  // each poisoned container contributes at least one quarantined token.
  platform_->ReapIdleContainers();
  RecoveryStats rs = platform_->recovery_stats();
  if (rs.enclave_failures > 0) {
    EXPECT_GE(rs.quarantined_slots, rs.enclave_failures);
  }
  EXPECT_GE(platform_->ContainerCount("predict"), 1);
  PlatformStats stats = platform_->stats();
  EXPECT_EQ(stats.enclave_failures, rs.enclave_failures);
  EXPECT_EQ(stats.retries, rs.retries);
}

// Poisoning must quarantine and relaunch deterministically, not just under
// load: one guaranteed ecall fault, then the very next (retried) traffic is
// healthy again and the stats show exactly one failure.
TEST_F(ChaosTest, SingleEcallFaultQuarantinesAndRelaunches) {
  auto warm = platform_->Invoke("predict", BuildRequest());
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();

  {
    FaultConfig config;
    config.probability = 1.0;
    config.max_fires = 1;
    config.error_code = StatusCode::kInternal;
    ScopedFault fault(faults::kEcallEnter, config);
    auto r = platform_->Invoke("predict", BuildRequest());
    ASSERT_FALSE(r.ok());
    // Poisoning surfaces as typed Unavailable — the ecall is never retried.
    EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
    EXPECT_NE(r.status().message().find("enclave failure"), std::string::npos);
  }

  RecoveryStats rs = platform_->recovery_stats();
  EXPECT_EQ(rs.enclave_failures, 1u);
  EXPECT_EQ(rs.retries, 0u);  // the inference ecall is not an idempotent stage

  // Service resumes on fresh capacity (bounded settle for relaunch backoff).
  bool recovered = false;
  for (int i = 0; i < 200 && !recovered; ++i) {
    recovered = platform_->Invoke("predict", BuildRequest()).ok();
    if (!recovered) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_TRUE(recovered);
  platform_->ReapIdleContainers();  // retires the drained poisoned enclave
  EXPECT_GE(platform_->recovery_stats().quarantined_slots, 1u);
}

// Idempotent-stage faults (model fetch here) are retried inside one Invoke:
// a single guaranteed fault still yields an OK result and one retry counted.
TEST_F(ChaosTest, IdempotentStageFaultIsRetriedTransparently) {
  FaultConfig config;
  config.probability = 1.0;
  config.max_fires = 1;
  config.error_code = StatusCode::kUnavailable;
  ScopedFault fault(faults::kStorageGet, config);

  auto r = platform_->Invoke("predict", BuildRequest());
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(platform_->recovery_stats().retries, 1u);
  EXPECT_EQ(platform_->recovery_stats().enclave_failures, 0u);
}

// ---------------------------------------------------------------------------
// Cluster chaos: one node dies mid-replay while low-rate enclave poisoning
// runs cluster-wide. The router must reroute around the dead node (typed
// outcomes only, every future resolved), and after the faults disarm the
// cluster must return to steady state *including* home routing to the
// revived node.
// ---------------------------------------------------------------------------

class ClusterChaosTest : public ChaosTest {
 protected:
  void SetUp() override {
    ChaosTest::SetUp();
    cluster::ClusterConfig config;
    config.initial_nodes = 3;
    // Short health cooldown so the post-chaos settle loop re-probes the
    // revived node quickly; per-node recovery uses the same tight backoffs
    // as the single-platform soak.
    config.health_cooldown = SecondsToMicros(0.002);
    config.node.recovery.retry.max_attempts = 3;
    config.node.recovery.retry.backoff_base_micros = 50;
    config.node.recovery.retry.backoff_max_micros = 500;
    config.node.recovery.relaunch_max_attempts = 1000;
    config.node.recovery.relaunch_backoff_base_micros = 100;
    config.node.recovery.relaunch_backoff_max_micros = 1000;
    cluster_ = std::make_unique<cluster::ClusterDataplane>(
        config, &authority_, &storage_, keyservice_.get());
    FunctionSpec fn;
    fn.name = "predict";
    ASSERT_TRUE(cluster_->DeployFunction(fn).ok());
    // Model grants/keys were provisioned by the base fixture.
  }

  Result<Bytes> ClusterInvoke() {
    InvocationResult out =
        cluster_->InvokeAsync("predict", BuildRequest()).get();
    return std::move(out.response);
  }

  std::unique_ptr<cluster::ClusterDataplane> cluster_;
};

TEST_F(ClusterChaosTest, NodeKillMidReplayReroutesAndRecovers) {
  // Warm once to learn the function's home node — the chaos victim.
  auto warm = ClusterInvoke();
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  int victim = -1;
  for (int i = 0; i < cluster_->total_nodes(); ++i) {
    if (cluster_->node(i)->ContainerCount("predict") > 0) victim = i;
  }
  ASSERT_GE(victim, 0);
  const uint64_t victim_routed_before =
      cluster_->stats().nodes[static_cast<size_t>(victim)].routed;

  // Storm: the victim's dispatch path fails every probe (a dead node), and
  // a low-rate ecall fault poisons enclaves anywhere in the cluster.
  {
    FaultConfig dead;
    dead.probability = 1.0;
    dead.error_code = StatusCode::kUnavailable;
    FaultInjector::Instance().Arm(cluster::NodeDispatchFaultPoint(victim), dead);
    FaultConfig poison;
    poison.probability = 0.02;
    poison.error_code = StatusCode::kInternal;
    FaultInjector::Instance().Arm(faults::kEcallEnter, poison);
  }

  constexpr int kThreads = 4;
  constexpr int kPerThread = 40;
  std::atomic<int> ok_count{0};
  std::atomic<int> failed_count{0};
  std::atomic<int> untyped_count{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      std::vector<std::future<InvocationResult>> futures;
      futures.reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        futures.push_back(cluster_->InvokeAsync("predict", BuildRequest()));
      }
      // Every future must resolve — a lost promise hangs right here.
      for (auto& f : futures) {
        InvocationResult out = f.get();
        const StatusCode code = out.response.status().code();
        if (!IsTypedChaosOutcome(code)) untyped_count.fetch_add(1);
        if (out.response.ok()) {
          ok_count.fetch_add(1);
        } else {
          failed_count.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(untyped_count.load(), 0) << "untyped/default code escaped";
  EXPECT_GT(ok_count.load(), 0) << "router failed to reroute around the victim";
  EXPECT_EQ(ok_count.load() + failed_count.load(), kThreads * kPerThread);

  cluster::ClusterStats storm = cluster_->stats();
  EXPECT_GT(storm.reroutes, 0u);
  // The dead node's dispatch probe never admitted a request.
  EXPECT_EQ(storm.nodes[static_cast<size_t>(victim)].routed,
            victim_routed_before);

  // Faults off: the cluster must recover unaided — first to service, then
  // to home routing on the revived victim (its health cooldown expires and
  // the bounded-load home pick sends the key back).
  FaultInjector::Instance().DisarmAll();
  bool recovered = false;
  for (int i = 0; i < 500 && !recovered; ++i) {
    const bool ok = ClusterInvoke().ok();
    recovered =
        ok && cluster_->stats().nodes[static_cast<size_t>(victim)].routed >
                  victim_routed_before;
    if (!recovered) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_TRUE(recovered) << "victim node never rejoined routing";

  // Steady state is fault-free.
  for (int i = 0; i < 20; ++i) {
    auto r = ClusterInvoke();
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  }

  // Counter consistency: every routed request is an invocation, and the
  // routed totals across nodes account for all of them.
  cluster::ClusterStats stats = cluster_->stats();
  uint64_t routed = 0;
  for (const auto& node : stats.nodes) routed += node.routed;
  EXPECT_EQ(routed, stats.invocations);
  EXPECT_EQ(stats.no_capacity, 0u);
}

}  // namespace
}  // namespace sesemi::serverless
