#include <gtest/gtest.h>

#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/logging.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

namespace sesemi {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status s = Status::NotFound("model m0");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: model m0");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 13; ++c) {
    EXPECT_NE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, CodeNameRoundTripsForEveryCode) {
  std::set<std::string_view> names;
  for (int c = 0; c <= 13; ++c) {
    const StatusCode code = static_cast<StatusCode>(c);
    const std::string_view name = StatusCodeToString(code);
    EXPECT_TRUE(names.insert(name).second) << "duplicate name: " << name;
    auto parsed = StatusCodeFromString(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, code);
  }
  EXPECT_FALSE(StatusCodeFromString("NoSuchCode").has_value());
  EXPECT_FALSE(StatusCodeFromString("").has_value());
  EXPECT_FALSE(StatusCodeFromString("ok").has_value());  // case-sensitive
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  auto inner = []() -> Status { return Status::Corruption("bad bytes"); };
  auto outer = [&]() -> Status {
    SESEMI_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsCorruption());
}

// ---------------------------------------------------------------- Result

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::NotFound("x"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto make = [](bool fail) -> Result<int> {
    if (fail) return Status::Internal("boom");
    return 7;
  };
  auto chain = [&](bool fail) -> Result<int> {
    SESEMI_ASSIGN_OR_RETURN(int v, make(fail));
    return v + 1;
  };
  EXPECT_EQ(*chain(false), 8);
  EXPECT_FALSE(chain(true).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

// ---------------------------------------------------------------- Bytes

TEST(BytesTest, HexRoundTrip) {
  Bytes b = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x7f};
  EXPECT_EQ(HexEncode(b), "deadbeef007f");
  EXPECT_EQ(HexDecode("deadbeef007f"), b);
  EXPECT_EQ(HexDecode("DEADBEEF007F"), b);
}

TEST(BytesTest, HexRejectsMalformed) {
  EXPECT_FALSE(IsHex("abc"));    // odd length
  EXPECT_FALSE(IsHex("zz"));     // non-hex char
  EXPECT_TRUE(HexDecode("abc").empty());
  EXPECT_TRUE(IsHex(""));
  EXPECT_TRUE(HexDecode("").empty());
}

TEST(BytesTest, StringRoundTrip) {
  std::string s = "hello sesemi";
  EXPECT_EQ(ToString(ToBytes(s)), s);
}

TEST(BytesTest, ConcatAndAppend) {
  Bytes a = {1, 2};
  Bytes b = {3};
  Bytes c = Concat({a, b, a});
  EXPECT_EQ(c, (Bytes{1, 2, 3, 1, 2}));
  Append(&c, b);
  EXPECT_EQ(c.back(), 3);
}

TEST(BytesTest, ConstantTimeEqual) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3};
  Bytes c = {1, 2, 4};
  Bytes d = {1, 2};
  EXPECT_TRUE(ConstantTimeEqual(a, b));
  EXPECT_FALSE(ConstantTimeEqual(a, c));
  EXPECT_FALSE(ConstantTimeEqual(a, d));
  EXPECT_TRUE(ConstantTimeEqual({}, {}));
}

TEST(BytesTest, BigEndianIntegers) {
  Bytes buf;
  PutUint32BE(&buf, 0x01020304u);
  PutUint64BE(&buf, 0x0102030405060708ull);
  ASSERT_EQ(buf.size(), 12u);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[3], 0x04);
  EXPECT_EQ(GetUint32BE(buf.data()), 0x01020304u);
  EXPECT_EQ(GetUint64BE(buf.data() + 4), 0x0102030405060708ull);
}

TEST(BytesTest, ReaderWriterRoundTrip) {
  ByteWriter w;
  w.WriteUint8(7);
  w.WriteUint32(0xcafebabe);
  w.WriteUint64(1234567890123ull);
  w.WriteLengthPrefixedString("model-id");
  w.WriteLengthPrefixed(Bytes{9, 9, 9});
  Bytes wire = std::move(w).Take();

  ByteReader r(wire);
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  std::string s;
  Bytes b;
  ASSERT_TRUE(r.ReadUint8(&u8));
  ASSERT_TRUE(r.ReadUint32(&u32));
  ASSERT_TRUE(r.ReadUint64(&u64));
  ASSERT_TRUE(r.ReadLengthPrefixedString(&s));
  ASSERT_TRUE(r.ReadLengthPrefixed(&b));
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u32, 0xcafebabeu);
  EXPECT_EQ(u64, 1234567890123ull);
  EXPECT_EQ(s, "model-id");
  EXPECT_EQ(b, (Bytes{9, 9, 9}));
  EXPECT_TRUE(r.done());
}

TEST(BytesTest, ReaderUnderflowIsSafe) {
  Bytes wire = {0, 0, 0, 10, 1, 2};  // declares 10 bytes, provides 2
  ByteReader r(wire);
  Bytes out;
  EXPECT_FALSE(r.ReadLengthPrefixed(&out));
  // Position must be unchanged so callers can try another parse.
  uint32_t len;
  EXPECT_TRUE(r.ReadUint32(&len));
  EXPECT_EQ(len, 10u);
}

TEST(BytesTest, ReaderEmptyInput) {
  ByteReader r(ByteSpan{});
  uint8_t v;
  EXPECT_FALSE(r.ReadUint8(&v));
  EXPECT_TRUE(r.done());
}

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextUint64() == b.NextUint64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformUint64(17), 17u);
  }
  EXPECT_EQ(rng.UniformUint64(0), 0u);
  EXPECT_EQ(rng.UniformUint64(1), 0u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, UniformDoubleInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ExponentialMeanApproximatesInverseRate) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(4.0);
  double mean = sum / n;
  EXPECT_NEAR(mean, 0.25, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, NextBytesLengthAndDeterminism) {
  Rng a(3), b(3);
  Bytes x = a.NextBytes(37);
  Bytes y = b.NextBytes(37);
  EXPECT_EQ(x.size(), 37u);
  EXPECT_EQ(x, y);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(5);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

// ---------------------------------------------------------------- Clock

TEST(ClockTest, ManualClockAdvances) {
  ManualClock clock(100);
  EXPECT_EQ(clock.Now(), 100);
  clock.Advance(50);
  EXPECT_EQ(clock.Now(), 150);
  clock.Set(10);
  EXPECT_EQ(clock.Now(), 10);
}

TEST(ClockTest, RealClockIsMonotonic) {
  RealClock clock;
  TimeMicros a = clock.Now();
  TimeMicros b = clock.Now();
  EXPECT_LE(a, b);
}

TEST(ClockTest, Conversions) {
  EXPECT_EQ(SecondsToMicros(1.5), 1500000);
  EXPECT_EQ(SecondsToMicros(0.0000005), 1);  // rounds
  EXPECT_DOUBLE_EQ(MicrosToSeconds(250000), 0.25);
}

// ---------------------------------------------------------------- Logging

// Captures every emitted line whole (the sink is called once per message,
// under the emit lock, with the fully formatted line).
std::mutex g_captured_mutex;
std::vector<std::string> g_captured_lines;

void CaptureSink(const char* line, size_t length) {
  std::lock_guard<std::mutex> lock(g_captured_mutex);
  g_captured_lines.emplace_back(line, length);
}

TEST(LoggingTest, ConcurrentEmitsAreAtomicPerMessage) {
  {
    std::lock_guard<std::mutex> lock(g_captured_mutex);
    g_captured_lines.clear();
  }
  const LogLevel saved_level = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  SetLogSink(&CaptureSink);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        SESEMI_ILOG << "thread=" << t << " message=" << i
                    << " padding=abcdefghijklmnopqrstuvwxyz";
      }
    });
  }
  for (auto& thread : threads) thread.join();
  SetLogSink(nullptr);
  SetLogLevel(saved_level);

  std::lock_guard<std::mutex> lock(g_captured_mutex);
  ASSERT_EQ(g_captured_lines.size(), kThreads * kPerThread);
  std::set<std::string> seen;
  for (const std::string& line : g_captured_lines) {
    // Every line must be exactly one intact message: a single prefix, the
    // full payload, one trailing newline, no interleaving from other threads.
    EXPECT_EQ(line.find("[INFO"), 0u) << line;
    EXPECT_NE(line.find(" padding=abcdefghijklmnopqrstuvwxyz\n"),
              std::string::npos)
        << line;
    EXPECT_EQ(line.find('\n'), line.size() - 1) << line;
    const size_t at = line.find("thread=");
    ASSERT_NE(at, std::string::npos) << line;
    EXPECT_TRUE(seen.insert(line.substr(at)).second) << "duplicate: " << line;
  }
  EXPECT_EQ(seen.size(), kThreads * kPerThread);
}

TEST(LoggingTest, SinkRestoresToStderrOnNull) {
  SetLogSink(nullptr);  // must not crash; subsequent logs go to stderr
  SESEMI_DLOG << "debug line after sink reset";
}

}  // namespace
}  // namespace sesemi
