// Cluster dataplane tests: consistent-hash placement properties (bounded
// churn, determinism, bounded skew), the autoscaling policy, and the
// multi-node router (placement stability, warm-slot stealing, reroute on
// node loss, stats-driven scaling against real node backlogs).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <future>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "client/clients.h"
#include "cluster/cluster.h"
#include "cluster/hash_ring.h"
#include "model/zoo.h"
#include "workload/generators.h"

namespace sesemi::cluster {
namespace {

using client::KeyServiceClient;
using client::ModelOwner;
using client::ModelUser;

// ---------------------------------------------------------------------------
// HashRing: property-style placement tests. Everything here is a pure
// function of (seed, membership, key), so the assertions are exact.
// ---------------------------------------------------------------------------

std::vector<std::string> MakeKeys(int n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (int i = 0; i < n; ++i) keys.push_back("fn" + std::to_string(i) + "|m");
  return keys;
}

TEST(HashRingTest, DeterministicForFixedSeed) {
  HashRingConfig config;
  config.seed = 0x1234;
  HashRing a(config), b(config);
  for (int i = 0; i < 6; ++i) {
    a.AddNode(i);
    b.AddNode(i);
  }
  for (const std::string& key : MakeKeys(500)) {
    EXPECT_EQ(a.Pick(key), b.Pick(key)) << key;
  }

  // A different seed is a different ring layout: some keys must move.
  HashRingConfig other = config;
  other.seed = 0x9999;
  HashRing c(other);
  for (int i = 0; i < 6; ++i) c.AddNode(i);
  int moved = 0;
  for (const std::string& key : MakeKeys(500)) moved += a.Pick(key) != c.Pick(key);
  EXPECT_GT(moved, 0);
}

TEST(HashRingTest, EmptyRingPicksNothing) {
  HashRing ring;
  EXPECT_EQ(ring.Pick("k"), -1);
  EXPECT_TRUE(ring.Preference("k", 3).empty());
  ring.AddNode(7);
  EXPECT_EQ(ring.Pick("k"), 7);
  ring.RemoveNode(7);
  EXPECT_EQ(ring.Pick("k"), -1);
}

TEST(HashRingTest, RemovalMovesOnlyTheRemovedNodesKeys) {
  HashRing ring;
  const int kNodes = 8;
  for (int i = 0; i < kNodes; ++i) ring.AddNode(i);
  const std::vector<std::string> keys = MakeKeys(4000);

  std::map<std::string, int> before;
  for (const std::string& key : keys) before[key] = ring.Pick(key);

  const int removed = 3;
  ring.RemoveNode(removed);
  int moved = 0;
  for (const std::string& key : keys) {
    const int now = ring.Pick(key);
    EXPECT_NE(now, removed);
    if (before[key] == removed) {
      moved++;
    } else {
      // Consistent hashing's defining property: keys not on the removed
      // node keep their placement exactly.
      EXPECT_EQ(now, before[key]) << key;
    }
  }
  // ~1/8 of the keys lived on the removed node; allow generous spread.
  EXPECT_GT(moved, static_cast<int>(keys.size()) / 24);
  EXPECT_LT(moved, static_cast<int>(keys.size()) / 3);

  // Re-adding restores the original layout bit-for-bit (vnode positions
  // derive from (seed, node, replica), not insertion order).
  ring.AddNode(removed);
  for (const std::string& key : keys) EXPECT_EQ(ring.Pick(key), before[key]);
}

TEST(HashRingTest, AdditionMovesBoundedFraction) {
  HashRing ring;
  const int kNodes = 8;
  for (int i = 0; i < kNodes; ++i) ring.AddNode(i);
  const std::vector<std::string> keys = MakeKeys(4000);

  std::map<std::string, int> before;
  for (const std::string& key : keys) before[key] = ring.Pick(key);

  ring.AddNode(kNodes);
  int moved = 0;
  for (const std::string& key : keys) {
    const int now = ring.Pick(key);
    if (now != before[key]) {
      // Keys only ever move *to* the new node, never between old nodes.
      EXPECT_EQ(now, kNodes) << key;
      moved++;
    }
  }
  // Expected share ~1/9; bound it well under 2x.
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, static_cast<int>(keys.size()) * 2 / 9);
}

TEST(HashRingTest, PreferenceStartsAtHomeAndIsDistinct) {
  HashRing ring;
  for (int i = 0; i < 5; ++i) ring.AddNode(i);
  for (const std::string& key : MakeKeys(100)) {
    std::vector<int> preference = ring.Preference(key, 5);
    ASSERT_EQ(preference.size(), 5u);
    EXPECT_EQ(preference.front(), ring.Pick(key));
    std::set<int> distinct(preference.begin(), preference.end());
    EXPECT_EQ(distinct.size(), 5u);
  }
}

// Bounded-load invariant (Mirrokni et al.): placing each key on
// PickBounded and charging it to the node keeps every node's load within
// ceil(c * (total + 1) / n) at every step — even under heavy Zipf key skew,
// where plain consistent hashing piles the hot tenants onto whatever nodes
// their hashes land on.
TEST(HashRingTest, ZipfSkewStaysWithinLoadBound) {
  HashRingConfig config;
  config.load_factor = 1.25;
  HashRing ring(config);
  const int kNodes = 8;
  for (int i = 0; i < kNodes; ++i) ring.AddNode(i);

  // Zipf(1.2) popularity over 32 tenants, 4000 placements total.
  std::vector<double> rates = workload::ZipfRates(32, 1.2, 4000.0);
  std::vector<uint64_t> bounded_load(kNodes, 0), plain_load(kNodes, 0);
  uint64_t total = 0;
  for (size_t tenant = 0; tenant < rates.size(); ++tenant) {
    const std::string key = "tenant" + std::to_string(tenant) + "|m";
    const int requests = static_cast<int>(rates[tenant]);
    for (int r = 0; r < requests; ++r) {
      const int node = ring.PickBounded(
          key, [&](int n) { return bounded_load[n]; }, total);
      ASSERT_GE(node, 0);
      const uint64_t bound = static_cast<uint64_t>(
          std::ceil(config.load_factor * static_cast<double>(total + 1) /
                    kNodes));
      EXPECT_LE(bounded_load[node] + 1, bound);
      bounded_load[node]++;
      plain_load[ring.Pick(key)]++;
      total++;
    }
  }
  const uint64_t bounded_max =
      *std::max_element(bounded_load.begin(), bounded_load.end());
  const uint64_t plain_max =
      *std::max_element(plain_load.begin(), plain_load.end());
  // The bound also ends tighter than the unbounded skew it protects against
  // (plain hashing puts the two hottest Zipf tenants wherever they hash).
  EXPECT_LE(bounded_max, plain_max);
  EXPECT_LE(static_cast<double>(bounded_max),
            std::ceil(config.load_factor * static_cast<double>(total) / kNodes) + 1);
}

TEST(HashRingTest, PickBoundedFallsBackToHomeWhenAllSaturated) {
  HashRing ring;
  for (int i = 0; i < 3; ++i) ring.AddNode(i);
  // Every node reports absurd load vs a tiny total: the bound excludes all,
  // and the work-conserving fallback must still return the home node.
  const int home = ring.Pick("k");
  EXPECT_EQ(ring.PickBounded("k", [](int) { return 1000; }, 1), home);
}

// ---------------------------------------------------------------------------
// Autoscaler: pure policy unit tests.
// ---------------------------------------------------------------------------

NodeLoadSample Sample(int node, uint64_t depth, uint64_t failures = 0) {
  NodeLoadSample s;
  s.node = node;
  s.queue_depth = depth;
  s.enclave_failures_delta = failures;
  return s;
}

TEST(AutoscalerTest, ScalesUpOnBacklogThenCoolsDown) {
  AutoscaleConfig config;
  config.scale_up_backlog_per_node = 8.0;
  config.cooldown_ticks = 2;
  Autoscaler scaler(config);
  EXPECT_EQ(scaler.Tick({Sample(0, 20), Sample(1, 20)}), ScaleDecision::kUp);
  // Two cooldown holds follow even though the backlog persists.
  EXPECT_EQ(scaler.Tick({Sample(0, 20), Sample(1, 20)}), ScaleDecision::kHold);
  EXPECT_EQ(scaler.Tick({Sample(0, 20), Sample(1, 20)}), ScaleDecision::kHold);
  EXPECT_EQ(scaler.Tick({Sample(0, 20), Sample(1, 20)}), ScaleDecision::kUp);
  EXPECT_EQ(scaler.stats().ups, 2u);
  EXPECT_EQ(scaler.stats().cooldown_holds, 2u);
}

TEST(AutoscalerTest, ScalesDownWhenIdleButRespectsMinNodes) {
  AutoscaleConfig config;
  config.cooldown_ticks = 0;
  config.min_nodes = 1;
  Autoscaler scaler(config);
  EXPECT_EQ(scaler.Tick({Sample(0, 0), Sample(1, 0)}), ScaleDecision::kDown);
  EXPECT_EQ(scaler.Tick({Sample(0, 0)}), ScaleDecision::kHold);  // at min
  EXPECT_EQ(scaler.stats().downs, 1u);
}

TEST(AutoscalerTest, DegradedNodeVetoesScaleDown) {
  AutoscaleConfig config;
  config.cooldown_ticks = 0;
  config.degraded_failures_per_tick = 2;
  Autoscaler scaler(config);
  // Idle backlog, but node 1 just burned 5 enclaves: capacity is about to
  // relaunch, not idle — hold.
  EXPECT_EQ(scaler.Tick({Sample(0, 0), Sample(1, 0, 5)}), ScaleDecision::kHold);
  EXPECT_EQ(scaler.Tick({Sample(0, 0), Sample(1, 0, 0)}), ScaleDecision::kDown);
}

TEST(AutoscalerTest, MaxNodesCapsScaleUp) {
  AutoscaleConfig config;
  config.max_nodes = 2;
  config.cooldown_ticks = 0;
  Autoscaler scaler(config);
  EXPECT_EQ(scaler.Tick({Sample(0, 100), Sample(1, 100)}), ScaleDecision::kHold);
  EXPECT_EQ(scaler.Tick({Sample(0, 100)}), ScaleDecision::kUp);
}

TEST(AutoscalerTest, DisabledAlwaysHolds) {
  AutoscaleConfig config;
  config.enabled = false;
  Autoscaler scaler(config);
  EXPECT_EQ(scaler.Tick({Sample(0, 1000)}), ScaleDecision::kHold);
  EXPECT_EQ(scaler.Tick({}), ScaleDecision::kHold);
}

// ---------------------------------------------------------------------------
// ClusterDataplane: routing against real nodes.
// ---------------------------------------------------------------------------

class ClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto server = keyservice::StartKeyService(&ks_platform_);
    ASSERT_TRUE(server.ok());
    keyservice_ = std::move(*server);
    auto ks_client = KeyServiceClient::Connect(
        keyservice_.get(), &authority_,
        keyservice::KeyServiceEnclave::ExpectedMeasurement());
    ASSERT_TRUE(ks_client.ok());
    client_ = std::move(*ks_client);

    owner_ = std::make_unique<ModelOwner>("owner");
    user_ = std::make_unique<ModelUser>("user");
    ASSERT_TRUE(owner_->Register(client_.get()).ok());
    ASSERT_TRUE(user_->Register(client_.get()).ok());

    model::ZooSpec spec;
    spec.model_id = "m0";
    spec.scale = 0.002;
    spec.input_hw = 16;
    auto graph = model::BuildModel(spec);
    ASSERT_TRUE(graph.ok());
    graph_ = *graph;
    ASSERT_TRUE(owner_->DeployModel(client_.get(), &storage_, *graph).ok());
  }

  void MakeCluster(ClusterConfig config) {
    cluster_ = std::make_unique<ClusterDataplane>(config, &authority_, &storage_,
                                                  keyservice_.get(), &clock_);
  }

  void DeployAndAuthorize(const std::string& fn_name,
                          sched::FunctionSchedParams sched = {}) {
    serverless::FunctionSpec spec;
    spec.name = fn_name;
    spec.sched = sched;
    ASSERT_TRUE(cluster_->DeployFunction(spec).ok());
    if (!authorized_) {
      sgx::Measurement es = semirt::SemirtInstance::MeasurementFor({});
      ASSERT_TRUE(owner_->GrantAccess(client_.get(), "m0", es, user_->id()).ok());
      ASSERT_TRUE(user_->ProvisionRequestKey(client_.get(), "m0", es).ok());
      authorized_ = true;
    }
  }

  semirt::InferenceRequest BuildRequest() {
    Bytes input = model::GenerateRandomInput(graph_, 1);
    auto request = user_->BuildRequest("m0", input);
    EXPECT_TRUE(request.ok());
    return *request;
  }

  Result<std::vector<float>> InvokeOnce(const std::string& fn) {
    serverless::InvocationResult out =
        cluster_->InvokeAsync(fn, BuildRequest()).get();
    SESEMI_ASSIGN_OR_RETURN(Bytes sealed, std::move(out.response));
    SESEMI_ASSIGN_OR_RETURN(Bytes output, user_->DecryptResult("m0", sealed));
    return model::ParseOutput(output);
  }

  // The one node currently holding all of `fn`'s containers, or -1.
  int SoleContainerNode(const std::string& fn) {
    int found = -1;
    for (int i = 0; i < cluster_->total_nodes(); ++i) {
      if (cluster_->node(i)->ContainerCount(fn) > 0) {
        if (found >= 0) return -1;
        found = i;
      }
    }
    return found;
  }

  sgx::AttestationAuthority authority_;
  sgx::SgxPlatform ks_platform_{sgx::SgxGeneration::kSgx2, &authority_};
  std::unique_ptr<keyservice::KeyServiceServer> keyservice_;
  std::unique_ptr<KeyServiceClient> client_;
  std::unique_ptr<ModelOwner> owner_;
  std::unique_ptr<ModelUser> user_;
  storage::InMemoryObjectStore storage_;
  model::ModelGraph graph_;
  ManualClock clock_;
  bool authorized_ = false;
  std::unique_ptr<ClusterDataplane> cluster_;
};

TEST_F(ClusterTest, RoutesExecutesAndCountsPerNode) {
  ClusterConfig config;
  config.initial_nodes = 3;
  MakeCluster(config);
  DeployAndAuthorize("predict");

  constexpr int kRequests = 12;
  for (int i = 0; i < kRequests; ++i) {
    auto result = InvokeOnce("predict");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_FALSE(result->empty());
  }

  ClusterStats stats = cluster_->stats();
  EXPECT_EQ(stats.invocations, kRequests);
  EXPECT_EQ(stats.no_capacity, 0u);
  uint64_t routed = 0;
  for (const ClusterNodeStats& node : stats.nodes) routed += node.routed;
  EXPECT_EQ(routed, kRequests);
}

TEST_F(ClusterTest, PlacementIsStableAtLowLoad) {
  ClusterConfig config;
  config.initial_nodes = 4;
  MakeCluster(config);
  DeployAndAuthorize("predict");

  // Sequential low-load invocations of one (function, model) key all land
  // on its home node: no backlog means the bounded pick never diverts.
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(InvokeOnce("predict").ok());
  ClusterStats stats = cluster_->stats();
  EXPECT_EQ(stats.home_hits, 8u);
  EXPECT_EQ(stats.steals, 0u);
  int nodes_used = 0;
  for (const ClusterNodeStats& node : stats.nodes) nodes_used += node.routed > 0;
  EXPECT_EQ(nodes_used, 1);
  // All containers sit on that one home node.
  EXPECT_GE(SoleContainerNode("predict"), 0);
}

TEST_F(ClusterTest, StealsWarmSlotInsteadOfColdStarting) {
  ClusterConfig config;
  config.initial_nodes = 3;
  config.node.keep_alive = SecondsToMicros(60);
  MakeCluster(config);
  DeployAndAuthorize("predict");

  // Warm the home node, then reap its container and warm a different node
  // directly (bypassing the router): the next routed request finds a
  // container-less home and a warm peer — it must steal, not cold start.
  ASSERT_TRUE(InvokeOnce("predict").ok());
  const int home = SoleContainerNode("predict");
  ASSERT_GE(home, 0);
  clock_.Advance(SecondsToMicros(120));
  ASSERT_EQ(cluster_->node(home)->ReapIdleContainers(), 1);

  const int warm = (home + 1) % cluster_->total_nodes();
  ASSERT_TRUE(cluster_->node(warm)->Invoke("predict", BuildRequest()).ok());
  ASSERT_EQ(cluster_->node(warm)->ContainerCount("predict"), 1);

  ASSERT_TRUE(InvokeOnce("predict").ok());
  ClusterStats stats = cluster_->stats();
  EXPECT_EQ(stats.steals, 1u);
  ASSERT_EQ(stats.nodes.size(), 3u);
  EXPECT_EQ(stats.nodes[warm].steal_wins, 1u);
  // The steal reused the warm container: still exactly one, still no
  // container at home.
  EXPECT_EQ(cluster_->node(warm)->ContainerCount("predict"), 1);
  EXPECT_EQ(cluster_->node(home)->ContainerCount("predict"), 0);
  EXPECT_EQ(cluster_->node(warm)->stats().cold_starts, 1u);  // the direct warm
}

TEST_F(ClusterTest, ReroutesWhenHomeNodeDeactivates) {
  ClusterConfig config;
  config.initial_nodes = 3;
  MakeCluster(config);
  DeployAndAuthorize("predict");

  ASSERT_TRUE(InvokeOnce("predict").ok());
  const int home = SoleContainerNode("predict");
  ASSERT_GE(home, 0);

  ASSERT_TRUE(cluster_->DeactivateNode(home).ok());
  EXPECT_EQ(cluster_->active_nodes(), 2);
  ASSERT_TRUE(InvokeOnce("predict").ok());
  ClusterStats stats = cluster_->stats();
  // The second request landed somewhere else (a fresh cold start there —
  // the deactivated node's warm container is not eligible for stealing).
  uint64_t routed_elsewhere = 0;
  for (const ClusterNodeStats& node : stats.nodes) {
    if (node.node != home) routed_elsewhere += node.routed;
  }
  EXPECT_EQ(routed_elsewhere, 1u);

  // Reactivating restores the original ring layout, so the key goes home
  // again — and now *steals back* to the node that kept the warm container.
  ASSERT_TRUE(cluster_->ActivateNode(home).ok());
  ASSERT_TRUE(InvokeOnce("predict").ok());
  EXPECT_EQ(cluster_->stats().nodes[home].routed, 2u);
}

TEST_F(ClusterTest, DeactivateLastNodeRefused) {
  ClusterConfig config;
  config.initial_nodes = 1;
  MakeCluster(config);
  EXPECT_EQ(cluster_->DeactivateNode(0).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(cluster_->ActivateNode(0).code(),
            StatusCode::kFailedPrecondition);  // already active
  EXPECT_TRUE(cluster_->DeactivateNode(9).IsInvalidArgument());
}

TEST_F(ClusterTest, UnknownFunctionResolvesTyped) {
  ClusterConfig config;
  config.initial_nodes = 2;
  MakeCluster(config);
  DeployAndAuthorize("predict");
  serverless::InvocationResult out =
      cluster_->InvokeAsync("ghost", BuildRequest()).get();
  EXPECT_TRUE(out.response.status().IsNotFound());
}

TEST_F(ClusterTest, AutoscaleUpFromRealBacklogThenDownWhenIdle) {
  ClusterConfig config;
  config.initial_nodes = 1;
  config.standby_nodes = 1;
  config.autoscale.scale_up_backlog_per_node = 4.0;
  config.autoscale.scale_down_backlog_per_node = 0.5;
  config.autoscale.cooldown_ticks = 0;
  MakeCluster(config);
  DeployAndAuthorize("predict");
  ASSERT_EQ(cluster_->active_nodes(), 1);

  // Gate node 0's dispatcher so submissions pile up in its scheduler — a
  // real queue_depth backlog, observed by AutoscaleTick via
  // scheduler_stats().
  cluster_->node(0)->PauseDispatch();
  std::vector<std::future<serverless::InvocationResult>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(cluster_->InvokeAsync("predict", BuildRequest()));
  }
  EXPECT_EQ(cluster_->AutoscaleTick(), +1);
  EXPECT_EQ(cluster_->active_nodes(), 2);
  EXPECT_EQ(cluster_->stats().scale_ups, 1u);

  cluster_->node(0)->ResumeDispatch();
  for (auto& f : futures) {
    serverless::InvocationResult out = f.get();
    EXPECT_TRUE(out.response.ok()) << out.response.status().ToString();
  }

  // Idle again: the next tick drains the emptier node back out.
  EXPECT_EQ(cluster_->AutoscaleTick(), -1);
  EXPECT_EQ(cluster_->active_nodes(), 1);
  EXPECT_EQ(cluster_->stats().scale_downs, 1u);
  // And at min_nodes the policy holds.
  EXPECT_EQ(cluster_->AutoscaleTick(), 0);
}

TEST_F(ClusterTest, PerNodeAdmissionStaysTyped) {
  ClusterConfig config;
  config.initial_nodes = 2;
  MakeCluster(config);
  // Backlog cap of 2 per node: flooding one key's home node must shed with
  // typed ResourceExhausted, never an exception or a hung future.
  sched::FunctionSchedParams sched;
  sched.max_queue_depth = 2;
  DeployAndAuthorize("predict", sched);

  cluster_->node(0)->PauseDispatch();
  cluster_->node(1)->PauseDispatch();
  std::vector<std::future<serverless::InvocationResult>> futures;
  for (int i = 0; i < 24; ++i) {
    futures.push_back(cluster_->InvokeAsync("predict", BuildRequest()));
  }
  cluster_->node(0)->ResumeDispatch();
  cluster_->node(1)->ResumeDispatch();

  int ok = 0, shed = 0;
  for (auto& f : futures) {
    serverless::InvocationResult out = f.get();
    const StatusCode code = out.response.status().code();
    if (code == StatusCode::kOk) {
      ok++;
    } else {
      // The scheduler sheds backlog overflow as typed Unavailable ("queue
      // full") and inflight overflow as ResourceExhausted — never an
      // exception, an untyped code, or a hung future.
      EXPECT_TRUE(code == StatusCode::kUnavailable ||
                  code == StatusCode::kResourceExhausted)
          << out.response.status().ToString();
      shed++;
    }
  }
  EXPECT_EQ(ok + shed, 24);
  EXPECT_GT(ok, 0);
  EXPECT_GT(shed, 0);  // cap 2 + inflight slack cannot absorb 24 paused submits
}

}  // namespace
}  // namespace sesemi::cluster
