#include <gtest/gtest.h>

#include "client/clients.h"
#include "crypto/key.h"
#include "keyservice/keyservice.h"
#include "model/zoo.h"
#include "semirt/semirt.h"
#include "sgx/platform.h"
#include "storage/object_store.h"

namespace sesemi::client {
namespace {

class ClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    keyservice_ = std::move(*keyservice::StartKeyService(&platform_));
    client_ = std::move(*KeyServiceClient::Connect(
        keyservice_.get(), &authority_,
        keyservice::KeyServiceEnclave::ExpectedMeasurement()));
  }

  model::ModelGraph SmallModel(const std::string& id) {
    model::ZooSpec spec;
    spec.model_id = id;
    spec.scale = 0.002;
    spec.input_hw = 16;
    return std::move(*model::BuildModel(spec));
  }

  sgx::AttestationAuthority authority_;
  sgx::SgxPlatform platform_{sgx::SgxGeneration::kSgx2, &authority_};
  std::unique_ptr<keyservice::KeyServiceServer> keyservice_;
  std::unique_ptr<KeyServiceClient> client_;
  storage::InMemoryObjectStore storage_;
};

TEST_F(ClientTest, OperationsRequireRegistration) {
  ModelOwner owner("o");
  ModelUser user("u");
  model::ModelGraph graph = SmallModel("m0");

  EXPECT_FALSE(owner.DeployModel(client_.get(), &storage_, graph).ok());
  EXPECT_FALSE(owner.GrantAccess(client_.get(), "m0", sgx::Measurement(), "x").ok());
  EXPECT_FALSE(user.ProvisionRequestKey(client_.get(), "m0", sgx::Measurement()).ok());
  EXPECT_TRUE(owner.id().empty());
}

TEST_F(ClientTest, OwnerTracksModelKeys) {
  ModelOwner owner("o");
  ASSERT_TRUE(owner.Register(client_.get()).ok());
  EXPECT_FALSE(owner.ModelKey("m0").ok());
  ASSERT_TRUE(owner.DeployModel(client_.get(), &storage_, SmallModel("m0")).ok());
  auto key = owner.ModelKey("m0");
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(key->size(), crypto::kSymmetricKeySize);
  // Two deployments get independent keys.
  ASSERT_TRUE(owner.DeployModel(client_.get(), &storage_, SmallModel("m1")).ok());
  EXPECT_NE(*owner.ModelKey("m0"), *owner.ModelKey("m1"));
}

TEST_F(ClientTest, UserRequiresProvisionedKeyToBuildRequests) {
  ModelUser user("u");
  ASSERT_TRUE(user.Register(client_.get()).ok());
  auto r = user.BuildRequest("m0", Bytes(16, 0));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(user.DecryptResult("m0", Bytes(64, 0)).ok());
}

TEST_F(ClientTest, AmbiguousDeploymentNeedsExplicitIdentity) {
  ModelOwner owner("o");
  ModelUser user("u");
  ASSERT_TRUE(owner.Register(client_.get()).ok());
  ASSERT_TRUE(user.Register(client_.get()).ok());
  ASSERT_TRUE(owner.DeployModel(client_.get(), &storage_, SmallModel("m0")).ok());

  semirt::SemirtOptions a, b;
  b.num_tcs = 4;
  sgx::Measurement es_a = semirt::SemirtInstance::MeasurementFor(a);
  sgx::Measurement es_b = semirt::SemirtInstance::MeasurementFor(b);
  ASSERT_TRUE(user.ProvisionRequestKey(client_.get(), "m0", es_a).ok());
  // One deployment: no identity needed.
  EXPECT_TRUE(user.BuildRequest("m0", Bytes(16, 1)).ok());

  ASSERT_TRUE(user.ProvisionRequestKey(client_.get(), "m0", es_b).ok());
  // Two deployments: ambiguous without identity, fine with one.
  EXPECT_FALSE(user.BuildRequest("m0", Bytes(16, 1)).ok());
  EXPECT_TRUE(user.BuildRequest("m0", Bytes(16, 1), &es_a).ok());
  EXPECT_TRUE(user.BuildRequest("m0", Bytes(16, 1), &es_b).ok());
  // Unknown identity still fails.
  sgx::Measurement other = sgx::Measurement::FromHex(std::string(64, 'e'));
  EXPECT_FALSE(user.BuildRequest("m0", Bytes(16, 1), &other).ok());
}

TEST_F(ClientTest, DistinctActorsGetDistinctIdentities) {
  ModelOwner o1("a"), o2("b");
  ModelUser u1("c");
  ASSERT_TRUE(o1.Register(client_.get()).ok());
  ASSERT_TRUE(o2.Register(client_.get()).ok());
  ASSERT_TRUE(u1.Register(client_.get()).ok());
  EXPECT_NE(o1.id(), o2.id());
  EXPECT_NE(o1.id(), u1.id());
  EXPECT_EQ(keyservice_->service()->registered_identities(), 3u);
}

TEST_F(ClientTest, ConnectRejectsWrongExpectedMeasurement) {
  auto bad = KeyServiceClient::Connect(keyservice_.get(), &authority_,
                                       sgx::Measurement::FromHex(std::string(64, '1')));
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsUnauthenticated());
}

TEST_F(ClientTest, DeployWithPlaintextCopyStoresBoth) {
  ModelOwner owner("o");
  ASSERT_TRUE(owner.Register(client_.get()).ok());
  ASSERT_TRUE(owner.DeployModel(client_.get(), &storage_, SmallModel("m0"),
                                /*with_plaintext_copy=*/true).ok());
  EXPECT_TRUE(storage_.Exists("models/m0"));
  EXPECT_TRUE(storage_.Exists("plainmodels/m0"));
  // The two stored blobs differ (one sealed, one raw).
  EXPECT_NE(*storage_.Get("models/m0"), *storage_.Get("plainmodels/m0"));
}

TEST_F(ClientTest, RequestPayloadsDifferPerBuild) {
  // Fresh GCM nonces: identical inputs produce distinct ciphertexts.
  ModelOwner owner("o");
  ModelUser user("u");
  ASSERT_TRUE(owner.Register(client_.get()).ok());
  ASSERT_TRUE(user.Register(client_.get()).ok());
  ASSERT_TRUE(owner.DeployModel(client_.get(), &storage_, SmallModel("m0")).ok());
  sgx::Measurement es = semirt::SemirtInstance::MeasurementFor({});
  ASSERT_TRUE(user.ProvisionRequestKey(client_.get(), "m0", es).ok());
  auto r1 = user.BuildRequest("m0", Bytes(16, 5));
  auto r2 = user.BuildRequest("m0", Bytes(16, 5));
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_NE(r1->encrypted_input, r2->encrypted_input);
}

}  // namespace
}  // namespace sesemi::client
