// Int8 tier coverage: quantizer properties, packed int8 layout, exact-int32
// kernel parity across instruction tiers (portable / AVX2 / AVX-512 VNNI),
// saturation and rounding edges, the version-2 quantized wire format, and
// end-to-end int8-vs-fp32 accuracy on every zoo architecture.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "inference/compiled_model.h"
#include "inference/framework.h"
#include "inference/gemm.h"
#include "model/format.h"
#include "model/quantize.h"
#include "model/zoo.h"

namespace sesemi::inference {
namespace {

using gemm::ActQuant;
using gemm::GemmIsa;
using model::Architecture;
using model::ModelGraph;
using model::ModelQuant;
using model::ZooSpec;

std::vector<float> RandomVec(size_t n, uint32_t seed) {
  std::vector<float> v(n);
  uint32_t state = seed * 2654435761u + 1;
  for (size_t i = 0; i < n; ++i) {
    state = state * 1664525u + 1013904223u;
    v[i] = static_cast<float>(static_cast<int32_t>(state >> 8) % 2001 - 1000) / 500.0f;
  }
  return v;
}

std::vector<int8_t> RandomInt8(size_t n, uint32_t seed, int lo = -127,
                               int hi = 127) {
  std::vector<int8_t> v(n);
  uint32_t state = seed * 2654435761u + 1;
  for (size_t i = 0; i < n; ++i) {
    state = state * 1664525u + 1013904223u;
    v[i] = static_cast<int8_t>(lo + static_cast<int>((state >> 8) % (hi - lo + 1)));
  }
  return v;
}

std::vector<uint8_t> RandomU7(size_t n, uint32_t seed) {
  std::vector<uint8_t> v(n);
  uint32_t state = seed * 2654435761u + 1;
  for (size_t i = 0; i < n; ++i) {
    state = state * 1664525u + 1013904223u;
    v[i] = static_cast<uint8_t>((state >> 8) % 128);
  }
  return v;
}

// Reference int8 GEMM: naive integer accumulation plus the exact fma-based
// epilogue the kernels use. The kernels must match this BITWISE — int32
// accumulation is exact on every tier and the epilogue is shared.
void GemmInt8Ref(const uint8_t* a, int lda, const float* a_scales,
                 const int32_t* a_zps, const int8_t* b, const float* w_scales,
                 const int32_t* w_colsums, const float* bias, float* c, int m,
                 int n, int k) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      int32_t acc = 0;
      for (int kk = 0; kk < k; ++kk) {
        acc += static_cast<int32_t>(a[static_cast<size_t>(i) * lda + kk]) *
               static_cast<int32_t>(b[static_cast<size_t>(kk) * n + j]);
      }
      c[static_cast<size_t>(i) * n + j] =
          std::fma(static_cast<float>(acc - a_zps[i] * w_colsums[j]),
                   a_scales[i] * w_scales[j], bias != nullptr ? bias[j] : 0.0f);
    }
  }
}

struct Int8Case {
  int m, n, k;
};

class Int8GemmParityTest : public ::testing::TestWithParam<Int8Case> {};

// Every available tier must reproduce the reference bitwise, on shapes that
// exercise K-group padding (odd k), ragged panels (odd n), and every
// micro-tile height.
TEST_P(Int8GemmParityTest, AllTiersMatchReferenceBitwise) {
  const Int8Case p = GetParam();
  const int k4 = gemm::RoundUpK4(p.k);
  std::vector<uint8_t> a(static_cast<size_t>(p.m) * k4, 0);
  for (int i = 0; i < p.m; ++i) {
    auto row = RandomU7(p.k, 100 + i);
    std::memcpy(a.data() + static_cast<size_t>(i) * k4, row.data(), p.k);
    // Poison the pad bytes: packed-B zero-padding must make them irrelevant.
    for (int kk = p.k; kk < k4; ++kk) a[static_cast<size_t>(i) * k4 + kk] = 99;
  }
  std::vector<int8_t> b = RandomInt8(static_cast<size_t>(p.k) * p.n, 7);
  std::vector<float> bias = RandomVec(p.n, 8);
  std::vector<float> w_scales(p.n);
  for (int j = 0; j < p.n; ++j) w_scales[j] = 0.01f + 0.001f * j;
  std::vector<int32_t> colsums(p.n);
  gemm::Int8ColumnSums(b.data(), p.k, p.n, colsums.data());
  std::vector<float> a_scales(p.m);
  std::vector<int32_t> a_zps(p.m);
  for (int i = 0; i < p.m; ++i) {
    a_scales[i] = 0.02f + 0.003f * i;
    a_zps[i] = (i * 37) % 128;  // includes 0; hits high zero-points
  }

  std::vector<int8_t> packed(gemm::PackedBInt8Bytes(p.k, p.n), 0x55);
  gemm::PackBInt8(b.data(), p.k, p.n, packed.data());

  std::vector<float> want(static_cast<size_t>(p.m) * p.n);
  GemmInt8Ref(a.data(), k4, a_scales.data(), a_zps.data(), b.data(),
              w_scales.data(), colsums.data(), bias.data(), want.data(), p.m,
              p.n, p.k);

  for (GemmIsa isa : {GemmIsa::kPortable, GemmIsa::kAvx2, GemmIsa::kAvx512Vnni}) {
    if (!gemm::GemmIsaAvailable(isa)) continue;
    std::vector<float> got(want.size(), -1.0f);
    gemm::GemmInt8Prepacked(a.data(), k4, a_scales.data(), a_zps.data(),
                            packed.data(), w_scales.data(), colsums.data(),
                            bias.data(), got.data(), p.m, p.n, p.k, isa);
    EXPECT_EQ(0, std::memcmp(want.data(), got.data(),
                             want.size() * sizeof(float)))
        << gemm::ToString(isa) << " diverges on " << p.m << "x" << p.n << "x"
        << p.k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    OddShapes, Int8GemmParityTest,
    ::testing::Values(Int8Case{1, 1, 1}, Int8Case{1, 17, 5}, Int8Case{2, 16, 4},
                      Int8Case{3, 15, 7}, Int8Case{5, 16, 19}, Int8Case{6, 33, 9},
                      Int8Case{7, 100, 13}, Int8Case{13, 31, 257},
                      Int8Case{24, 64, 127}, Int8Case{8, 10, 515}));

// Saturation edge: the u7 x s8 pairing keeps vpmaddubsw pair sums at most
// 127*127*2 = 32258 < INT16_MAX. Drive the extreme operands (a = 127, b =
// +/-127 alternating so pairs reinforce) through every tier and require the
// exact integer result.
TEST(Int8GemmEdgeTest, ExtremeOperandsStayExact) {
  const int k = 128, n = 16, m = 2;
  std::vector<uint8_t> a(static_cast<size_t>(m) * k, 127);
  std::vector<int8_t> b(static_cast<size_t>(k) * n);
  for (int kk = 0; kk < k; ++kk) {
    for (int j = 0; j < n; ++j) {
      // Column parity decides the sign so some columns hit +127*127*k and
      // some -127*127*k; within a column all taps agree (worst pair sums).
      b[static_cast<size_t>(kk) * n + j] = (j % 2 == 0) ? 127 : -127;
    }
  }
  std::vector<int32_t> colsums(n);
  gemm::Int8ColumnSums(b.data(), k, n, colsums.data());
  std::vector<float> w_scales(n, 1.0f);
  std::vector<float> a_scales(m, 1.0f);
  std::vector<int32_t> a_zps(m, 0);
  std::vector<int8_t> packed(gemm::PackedBInt8Bytes(k, n));
  gemm::PackBInt8(b.data(), k, n, packed.data());

  for (GemmIsa isa : {GemmIsa::kPortable, GemmIsa::kAvx2, GemmIsa::kAvx512Vnni}) {
    if (!gemm::GemmIsaAvailable(isa)) continue;
    std::vector<float> got(static_cast<size_t>(m) * n);
    gemm::GemmInt8Prepacked(a.data(), k, a_scales.data(), a_zps.data(),
                            packed.data(), w_scales.data(), colsums.data(),
                            nullptr, got.data(), m, n, k, isa);
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        const float want = (j % 2 == 0 ? 1.0f : -1.0f) * 127.0f * 127.0f * k;
        EXPECT_EQ(got[static_cast<size_t>(i) * n + j], want)
            << gemm::ToString(isa) << " at " << i << "," << j;
      }
    }
  }
}

TEST(Int8GemmEdgeTest, RequantSaturatesAndRounds) {
  // One row, k = 4: accumulators chosen to force the requant clamp at both
  // rails and exercise round-to-nearest-even at the midpoint.
  const int k = 4, n = 16, m = 1;
  std::vector<uint8_t> a(k, 1);
  std::vector<int8_t> b(static_cast<size_t>(k) * n, 0);
  for (int j = 0; j < n; ++j) b[j] = static_cast<int8_t>(j % 2 == 0 ? 100 : -100);
  std::vector<int32_t> colsums(n);
  gemm::Int8ColumnSums(b.data(), k, n, colsums.data());
  std::vector<float> w_scales(n, 1.0f);
  const float a_scale = 1.0f;
  const int32_t a_zp = 0;
  std::vector<int8_t> packed(gemm::PackedBInt8Bytes(k, n));
  gemm::PackBInt8(b.data(), k, n, packed.data());

  // acc = +/-100; out.scale = 0.5 -> q = +/-200 + zp, clamped to [-128, 127].
  ActQuant out_q;
  out_q.scale = 0.5f;
  out_q.zero_point = 10;
  std::vector<int8_t> got(n, 0);
  gemm::GemmInt8PrepackedRequant(a.data(), k, &a_scale, &a_zp, packed.data(),
                                 w_scales.data(), colsums.data(), nullptr,
                                 out_q, got.data(), m, n, k);
  for (int j = 0; j < n; ++j) {
    EXPECT_EQ(got[j], j % 2 == 0 ? 127 : -128) << "clamp rail at col " << j;
  }

  // Rounding: acc = 100, out.scale = 40 -> 100/40 = 2.5, lrintf rounds to
  // even -> 2, plus zero-point.
  out_q.scale = 40.0f;
  out_q.zero_point = 3;
  gemm::GemmInt8PrepackedRequant(a.data(), k, &a_scale, &a_zp, packed.data(),
                                 w_scales.data(), colsums.data(), nullptr,
                                 out_q, got.data(), m, n, k);
  EXPECT_EQ(got[0], 2 + 3);
}

TEST(PackBInt8Test, LayoutInterleavesKGroupsAndZeroPads) {
  // 2 panels (n = 17), k = 5 -> k4 = 8. Byte (g, j, ki) of a panel must be
  // B[4g + ki][panel*16 + j]; K pad rows and the ragged panel edge are zero.
  const int k = 5, n = 17;
  std::vector<int8_t> b(static_cast<size_t>(k) * n);
  for (int kk = 0; kk < k; ++kk) {
    for (int j = 0; j < n; ++j) {
      b[static_cast<size_t>(kk) * n + j] = static_cast<int8_t>(kk * 20 + j - 60);
    }
  }
  std::vector<int8_t> packed(gemm::PackedBInt8Bytes(k, n), 0x7f);
  gemm::PackBInt8(b.data(), k, n, packed.data());
  ASSERT_EQ(packed.size(), 2u * 8u * 16u);
  const int k4 = gemm::RoundUpK4(k);
  for (int panel = 0; panel < 2; ++panel) {
    const int8_t* pp = packed.data() + panel * k4 * 16;
    for (int g = 0; g < k4 / 4; ++g) {
      for (int j = 0; j < 16; ++j) {
        for (int ki = 0; ki < 4; ++ki) {
          const int kk = 4 * g + ki;
          const int col = panel * 16 + j;
          const int8_t want =
              (kk < k && col < n) ? b[static_cast<size_t>(kk) * n + col] : 0;
          EXPECT_EQ(pp[g * 64 + j * 4 + ki], want)
              << "panel " << panel << " g " << g << " j " << j << " ki " << ki;
        }
      }
    }
  }
}

TEST(QuantizeActivationsTest, ZeroQuantizesExactlyAndRangeCovers) {
  std::vector<float> x = {-1.5f, 0.0f, 0.75f, 3.0f, -0.25f};
  std::vector<uint8_t> q(x.size());
  const ActQuant aq = gemm::QuantizeActivations(x.data(), x.size(), q.data());
  EXPECT_GE(aq.zero_point, 0);
  EXPECT_LE(aq.zero_point, 127);
  // A true zero activation must land exactly on the zero-point (conv padding
  // correctness depends on it).
  EXPECT_EQ(q[1], aq.zero_point);
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_LE(q[i], 127);
    const float back = (static_cast<int>(q[i]) - aq.zero_point) * aq.scale;
    EXPECT_NEAR(back, x[i], aq.scale * 0.51f) << "element " << i;
  }
}

TEST(QuantizeActivationsTest, AllZeroInputIsStable) {
  std::vector<float> x(32, 0.0f);
  std::vector<uint8_t> q(x.size(), 255);
  const ActQuant aq = gemm::QuantizeActivations(x.data(), x.size(), q.data());
  EXPECT_EQ(aq.scale, 1.0f);
  for (uint8_t v : q) EXPECT_EQ(v, aq.zero_point);
}

TEST(GemmIsaTest, NamesAndAvailability) {
  EXPECT_STREQ(gemm::ToString(GemmIsa::kPortable), "portable");
  EXPECT_STREQ(gemm::ToString(GemmIsa::kAvx2), "avx2");
  EXPECT_STREQ(gemm::ToString(GemmIsa::kAvx512Vnni), "avx512-vnni");
  EXPECT_TRUE(gemm::GemmIsaAvailable(GemmIsa::kPortable));
  EXPECT_TRUE(gemm::GemmIsaAvailable(GemmIsa::kAuto));
  // The active tier must itself be available.
  EXPECT_TRUE(gemm::GemmIsaAvailable(gemm::ActiveGemmIsa()));
}

// ------------------------------------------------------------ weight quant

TEST(ModelQuantTest, PerChannelSymmetricRoundTrip) {
  ZooSpec spec;
  spec.arch = Architecture::kMbNet;
  spec.scale = 0.002;
  spec.input_hw = 16;
  auto graph = model::BuildModel(spec);
  ASSERT_TRUE(graph.ok());
  const ModelQuant quant = model::QuantizeModelWeights(*graph);
  ASSERT_FALSE(quant.empty());

  for (const model::LayerQuant& lq : quant.layers) {
    const model::Layer& layer = graph->layers[lq.layer];
    ASSERT_TRUE(model::LayerQuantizable(layer));
    ASSERT_EQ(layer.weight_count,
              static_cast<uint64_t>(lq.k) * lq.n + lq.n);
    const float* w = graph->weights.data() + layer.weight_offset;
    std::vector<float> back(static_cast<size_t>(lq.k) * lq.n);
    model::DequantizeLayer(lq, back.data());
    for (size_t i = 0; i < back.size(); ++i) {
      const float scale = lq.scales[i % lq.n];
      EXPECT_NEAR(back[i], w[i], scale * 0.51f);  // within half a quant step
      EXPECT_GE(lq.weights[i], -127);  // symmetric: -128 never used
    }
  }
}

TEST(ModelQuantTest, CompactDropsMatricesKeepsBiases) {
  ZooSpec spec;
  spec.arch = Architecture::kHybNet;
  spec.scale = 0.02;
  spec.input_hw = 16;
  auto graph = model::BuildModel(spec);
  ASSERT_TRUE(graph.ok());
  ModelGraph compacted = *graph;
  const ModelQuant quant = model::QuantizeModelWeights(compacted);
  ASSERT_FALSE(quant.empty());
  ASSERT_TRUE(model::CompactQuantizedWeights(&compacted, quant).ok());
  ASSERT_TRUE(compacted.Validate().ok());
  EXPECT_LT(compacted.weights.size(), graph->weights.size() / 2);

  // Every quantized layer's slice is now its bias, value-identical to the
  // original bias; every other slice is untouched.
  std::vector<const model::LayerQuant*> by_layer(graph->layers.size(), nullptr);
  for (const auto& lq : quant.layers) by_layer[lq.layer] = &lq;
  for (size_t i = 0; i < graph->layers.size(); ++i) {
    const model::Layer& before = graph->layers[i];
    const model::Layer& after = compacted.layers[i];
    if (before.weight_count == 0) continue;
    if (const model::LayerQuant* lq = by_layer[i]; lq != nullptr) {
      ASSERT_EQ(after.weight_count, static_cast<uint64_t>(lq->n));
      const float* want = graph->weights.data() + before.weight_offset +
                          static_cast<uint64_t>(lq->k) * lq->n;
      const float* got = compacted.weights.data() + after.weight_offset;
      EXPECT_EQ(0, std::memcmp(want, got, lq->n * sizeof(float)));
    } else {
      ASSERT_EQ(after.weight_count, before.weight_count);
      EXPECT_EQ(0, std::memcmp(
                       graph->weights.data() + before.weight_offset,
                       compacted.weights.data() + after.weight_offset,
                       before.weight_count * sizeof(float)));
    }
  }
}

// ------------------------------------------------------------- wire format

TEST(QuantizedFormatTest, Version2RoundTripsBitwise) {
  ZooSpec spec;
  spec.arch = Architecture::kDsNet;
  spec.scale = 0.002;
  spec.input_hw = 16;
  auto graph = model::BuildModel(spec);
  ASSERT_TRUE(graph.ok());
  ModelGraph compacted = *graph;
  const ModelQuant quant = model::QuantizeModelWeights(compacted);
  ASSERT_TRUE(model::CompactQuantizedWeights(&compacted, quant).ok());

  const Bytes wire = model::SerializeQuantizedModel(compacted, quant);
  const Bytes fp32_wire = model::SerializeModel(*graph);
  // The quantized file carries the matrices once, as int8: much smaller.
  EXPECT_LT(wire.size(), fp32_wire.size() / 2);

  auto parsed = model::ParseQuantizedModel(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->graph.model_id, compacted.model_id);
  EXPECT_EQ(parsed->graph.weights, compacted.weights);
  ASSERT_EQ(parsed->quant.layers.size(), quant.layers.size());
  for (size_t i = 0; i < quant.layers.size(); ++i) {
    EXPECT_EQ(parsed->quant.layers[i].layer, quant.layers[i].layer);
    EXPECT_EQ(parsed->quant.layers[i].k, quant.layers[i].k);
    EXPECT_EQ(parsed->quant.layers[i].n, quant.layers[i].n);
    EXPECT_EQ(parsed->quant.layers[i].scales, quant.layers[i].scales);
    EXPECT_EQ(parsed->quant.layers[i].weights, quant.layers[i].weights);
  }

  // ParseModel must refuse the quantized container (its fp32 blob is
  // compacted), and ParseQuantizedModel must accept version-1 files.
  EXPECT_FALSE(model::ParseModel(wire).ok());
  auto v1 = model::ParseQuantizedModel(fp32_wire);
  ASSERT_TRUE(v1.ok());
  EXPECT_TRUE(v1->quant.empty());
  EXPECT_EQ(v1->graph.weights, graph->weights);

  // Corruption anywhere in the body trips the digest.
  Bytes tampered = wire;
  tampered[tampered.size() / 2] ^= 0x01;
  EXPECT_FALSE(model::ParseQuantizedModel(tampered).ok());
}

// --------------------------------------------------------------- end to end

double TopScore(const std::vector<float>& scores, int* arg) {
  int best = 0;
  for (size_t i = 1; i < scores.size(); ++i) {
    if (scores[i] > scores[best]) best = static_cast<int>(i);
  }
  *arg = best;
  return scores[best];
}

class ZooQuantParityTest : public ::testing::TestWithParam<Architecture> {};

// The accuracy claim: on every zoo architecture the int8 pipeline stays close
// to fp32 — bounded max abs error on the softmax scores and top-1 agreement
// (allowing a swap only when fp32 itself was nearly tied).
TEST_P(ZooQuantParityTest, Int8TracksFp32OnZooModels) {
  ZooSpec spec;
  spec.arch = GetParam();
  spec.scale = GetParam() == Architecture::kHybNet ? 0.02 : 0.002;
  spec.input_hw = 16;
  auto graph = model::BuildModel(spec);
  ASSERT_TRUE(graph.ok());

  auto fp32 = CompiledModel::Compile(*graph);
  ASSERT_TRUE(fp32.ok());
  CompiledModel::Options qopts;
  qopts.quantize = true;
  auto int8 = CompiledModel::Compile(*graph, qopts);
  ASSERT_TRUE(int8.ok()) << int8.status().ToString();
  EXPECT_TRUE(int8->quantized());

  std::vector<float> arena_a(fp32->arena_elements());
  std::vector<float> arena_b(int8->arena_elements());
  int agreements = 0, samples = 0;
  float worst = 0.0f;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const Bytes input = model::GenerateRandomInput(*graph, seed);
    auto out_a = fp32->Execute(input, arena_a.data());
    auto out_b = int8->Execute(input, arena_b.data());
    ASSERT_TRUE(out_a.ok() && out_b.ok());
    auto sa = model::ParseOutput(*out_a);
    auto sb = model::ParseOutput(*out_b);
    ASSERT_TRUE(sa.ok() && sb.ok());
    ASSERT_EQ(sa->size(), sb->size());
    for (size_t i = 0; i < sa->size(); ++i) {
      worst = std::max(worst, std::fabs((*sa)[i] - (*sb)[i]));
    }
    int top_a = 0, top_b = 0;
    TopScore(*sa, &top_a);
    TopScore(*sb, &top_b);
    ++samples;
    // Count as agreement when the classes match, or when fp32 scored the two
    // contenders within a near-tie band (quantization may legally flip those).
    if (top_a == top_b || std::fabs((*sa)[top_a] - (*sa)[top_b]) < 0.05f) {
      ++agreements;
    }
  }
  EXPECT_EQ(agreements, samples) << model::ToString(GetParam());
  EXPECT_LE(worst, 0.08f) << model::ToString(GetParam())
                          << ": int8 drifted too far from fp32 softmax scores";
}

// Batched quantized execution must agree with per-sample quantized execution
// on the shared-activation topologies too.
TEST_P(ZooQuantParityTest, BatchedInt8MatchesUnbatched) {
  ZooSpec spec;
  spec.arch = GetParam();
  spec.scale = GetParam() == Architecture::kHybNet ? 0.02 : 0.002;
  spec.input_hw = 16;
  auto graph = model::BuildModel(spec);
  ASSERT_TRUE(graph.ok());
  CompiledModel::Options qopts;
  qopts.quantize = true;
  auto compiled = CompiledModel::Compile(std::move(*graph), qopts);
  ASSERT_TRUE(compiled.ok());

  constexpr int kBatch = 4;
  std::vector<Bytes> inputs;
  std::vector<Bytes> want;
  std::vector<float> arena(compiled->arena_elements());
  for (int b = 0; b < kBatch; ++b) {
    inputs.push_back(model::GenerateRandomInput(compiled->graph(), 90 + b));
    auto out = compiled->Execute(inputs.back(), arena.data());
    ASSERT_TRUE(out.ok());
    want.push_back(std::move(*out));
  }
  std::vector<ByteSpan> spans(inputs.begin(), inputs.end());
  std::vector<float> batch_arena(compiled->batch_arena_elements(kBatch));
  std::vector<Bytes> outputs;
  ASSERT_TRUE(compiled->ExecuteBatch(spans, batch_arena.data(), &outputs).ok());
  ASSERT_EQ(outputs.size(), static_cast<size_t>(kBatch));
  for (int b = 0; b < kBatch; ++b) {
    EXPECT_EQ(outputs[b], want[b]) << model::ToString(GetParam()) << " sample "
                                   << b;
  }
}

INSTANTIATE_TEST_SUITE_P(AllArchitectures, ZooQuantParityTest,
                         ::testing::Values(Architecture::kMbNet,
                                           Architecture::kRsNet,
                                           Architecture::kDsNet,
                                           Architecture::kHybNet),
                         [](const auto& info) {
                           return std::string(model::ToString(info.param));
                         });

TEST(QuantizedCompileTest, PrecomputedQuantMatchesInternalQuantizer) {
  // Compiling from a parsed version-2 file must produce bit-identical outputs
  // to compiling the fp32 graph with Options::quantize (same quantizer, same
  // kernels).
  ZooSpec spec;
  spec.arch = Architecture::kRsNet;
  spec.scale = 0.002;
  spec.input_hw = 16;
  auto graph = model::BuildModel(spec);
  ASSERT_TRUE(graph.ok());

  CompiledModel::Options qopts;
  qopts.quantize = true;
  auto internal = CompiledModel::Compile(*graph, qopts);
  ASSERT_TRUE(internal.ok());

  ModelGraph compacted = *graph;
  ModelQuant quant = model::QuantizeModelWeights(compacted);
  ASSERT_TRUE(model::CompactQuantizedWeights(&compacted, quant).ok());
  const Bytes wire = model::SerializeQuantizedModel(compacted, quant);
  auto file = model::ParseQuantizedModel(wire);
  ASSERT_TRUE(file.ok());
  auto external = CompiledModel::Compile(std::move(file->graph),
                                         std::move(file->quant),
                                         CompiledModel::Options());
  ASSERT_TRUE(external.ok()) << external.status().ToString();

  const Bytes input = model::GenerateRandomInput(*graph, 5);
  std::vector<float> arena_a(internal->arena_elements());
  std::vector<float> arena_b(external->arena_elements());
  auto out_a = internal->Execute(input, arena_a.data());
  auto out_b = external->Execute(input, arena_b.data());
  ASSERT_TRUE(out_a.ok() && out_b.ok());
  EXPECT_EQ(*out_a, *out_b);
}

TEST(QuantizedCompileTest, QuantizedArtifactIsAtLeastThreeTimesSmaller) {
  // The memory acceptance: int8 panels replace both the fp32 matrices and the
  // fp32 packed panels, so the loaded-model footprint shrinks >= 3x.
  ZooSpec spec;
  spec.arch = Architecture::kMbNet;
  spec.scale = 0.01;
  spec.input_hw = 16;
  auto graph = model::BuildModel(spec);
  ASSERT_TRUE(graph.ok());

  auto fp32_fw = CreateFramework(FrameworkKind::kTvm);
  FrameworkOptions fopts;
  fopts.quantize = true;
  auto int8_fw = CreateFramework(FrameworkKind::kTvm, fopts);
  auto lm_fp32 = fp32_fw->WrapModel(*graph);
  auto lm_int8 = int8_fw->WrapModel(*graph);
  ASSERT_TRUE(lm_fp32.ok() && lm_int8.ok());
  EXPECT_GE((*lm_fp32)->memory_bytes(),
            3 * (*lm_int8)->memory_bytes())
      << "fp32 " << (*lm_fp32)->memory_bytes() << " vs int8 "
      << (*lm_int8)->memory_bytes();
}

TEST(QuantizedCompileTest, FrameworksLoadVersion2Files) {
  ZooSpec spec;
  spec.arch = Architecture::kMbNet;
  spec.scale = 0.002;
  spec.input_hw = 16;
  auto graph = model::BuildModel(spec);
  ASSERT_TRUE(graph.ok());
  ModelGraph compacted = *graph;
  ModelQuant quant = model::QuantizeModelWeights(compacted);
  ASSERT_TRUE(model::CompactQuantizedWeights(&compacted, quant).ok());
  const Bytes wire = model::SerializeQuantizedModel(compacted, quant);

  for (FrameworkKind kind : {FrameworkKind::kTvm, FrameworkKind::kTflm}) {
    auto fw = CreateFramework(kind);
    auto loaded = fw->LoadModel(wire);
    ASSERT_TRUE(loaded.ok()) << ToString(kind) << ": "
                             << loaded.status().ToString();
    auto runtime = fw->CreateRuntime(*loaded);
    ASSERT_TRUE(runtime.ok());
    const Bytes input = model::GenerateRandomInput((*loaded)->graph(), 11);
    auto out = (*runtime)->Execute(input);
    ASSERT_TRUE(out.ok());
    auto scores = model::ParseOutput(*out);
    ASSERT_TRUE(scores.ok());
    EXPECT_EQ(scores->size(), static_cast<size_t>(spec.classes));
  }
}

}  // namespace
}  // namespace sesemi::inference
