#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/rng.h"
#include "crypto/aes.h"
#include "crypto/gcm.h"
#include "crypto/hkdf.h"
#include "crypto/hmac.h"
#include "crypto/key.h"
#include "crypto/random.h"
#include "crypto/sha256.h"
#include "crypto/x25519.h"

namespace sesemi::crypto {

/// Test-only seam into the fused CTR+GHASH walk: the 32-bit counter-wrap
/// regression needs a J0 whose counter field sits near 2^32, which a 12-byte
/// nonce (counter always starts at 1) can never produce through the public
/// API without a ~64 GiB message.
struct GcmTestPeer {
  static void CtrCryptAndHash(const AesGcm& gcm, const uint8_t j0[16], ByteSpan in,
                              uint8_t* out, uint8_t y[16], bool hash_output) {
    gcm.CtrCryptAndHash(j0, in, out, y, hash_output);
  }
};

namespace {

std::string HashHex(ByteSpan data) {
  return HexEncode(Sha256::HashToBytes(data));
}

// ---------------------------------------------------------------- SHA-256
// Vectors from FIPS 180-4 / NIST CAVP.

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(HashHex(ToBytes("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(HashHex(ToBytes("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(HashHex(ToBytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionA) {
  // (A previous version called Finish() twice and spliced iterators from two
  // distinct temporaries — UB the ASan CI leg caught.)
  Sha256 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  auto d = h.Finish();
  EXPECT_EQ(HexEncode(ByteSpan(d.data(), d.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Rng rng(1);
  Bytes data = rng.NextBytes(10000);
  Sha256 h;
  // Feed in irregular chunk sizes that straddle block boundaries.
  size_t pos = 0;
  size_t sizes[] = {1, 63, 64, 65, 127, 128, 1000, 8552};
  for (size_t s : sizes) {
    h.Update(ByteSpan(data.data() + pos, s));
    pos += s;
  }
  ASSERT_EQ(pos, data.size());
  EXPECT_EQ(h.Finish(), Sha256::Hash(data));
}

TEST(Sha256Test, ResetAllowsReuse) {
  Sha256 h;
  h.Update(ToBytes("garbage"));
  h.Reset();
  h.Update(ToBytes("abc"));
  EXPECT_EQ(h.Finish(), Sha256::Hash(ToBytes("abc")));
}

// Boundary lengths around the 55/56-byte padding edge.
class Sha256PaddingTest : public ::testing::TestWithParam<size_t> {};

TEST_P(Sha256PaddingTest, MatchesIncrementalByteFeed) {
  size_t n = GetParam();
  Bytes data(n, 0x5a);
  Sha256 h;
  for (size_t i = 0; i < n; ++i) h.Update(ByteSpan(data.data() + i, 1));
  EXPECT_EQ(h.Finish(), Sha256::Hash(data)) << "length " << n;
}

INSTANTIATE_TEST_SUITE_P(PaddingEdges, Sha256PaddingTest,
                         ::testing::Values(0, 1, 54, 55, 56, 57, 63, 64, 65, 119,
                                           120, 128, 129));

// SHA-NI vs portable: both compression paths must produce identical digests
// for every length around block/padding boundaries and for bulk input. The
// pinned-portable instances keep this meaningful on machines where the
// default resolves to hardware (and vice versa under SESEMI_FORCE_PORTABLE).
TEST(Sha256Test, HardwarePortableParity) {
  if (!Sha256HardwareAvailable()) {
    GTEST_SKIP() << "CPU lacks the SHA extensions";
  }
  Rng rng(77);
  const size_t lengths[] = {0,  1,  31,  55,  56,  63,  64,   65,
                            96, 127, 128, 129, 1000, 4096, 65536};
  for (size_t n : lengths) {
    Bytes data = rng.NextBytes(n);
    Sha256 hw(CryptoBackend::kHardware);
    Sha256 portable(CryptoBackend::kPortable);
    hw.Update(data);
    portable.Update(data);
    EXPECT_EQ(hw.Finish(), portable.Finish()) << "length " << n;
  }
}

TEST(Sha256Test, HardwarePortableParityStreaming) {
  if (!Sha256HardwareAvailable()) {
    GTEST_SKIP() << "CPU lacks the SHA extensions";
  }
  // Irregular chunk feed: both backends must carry partial-block state the
  // same way (the hw path only ever sees whole blocks; the buffer logic in
  // front of it is shared).
  Rng rng(78);
  Bytes data = rng.NextBytes(10000);
  Sha256 hw(CryptoBackend::kHardware);
  Sha256 portable(CryptoBackend::kPortable);
  size_t pos = 0;
  size_t sizes[] = {1, 63, 64, 65, 127, 128, 1000, 8552};
  for (size_t s : sizes) {
    hw.Update(ByteSpan(data.data() + pos, s));
    portable.Update(ByteSpan(data.data() + pos, s));
    pos += s;
  }
  ASSERT_EQ(pos, data.size());
  EXPECT_EQ(hw.Finish(), portable.Finish());
}

TEST(Sha256Test, BackendSelectionFollowsProcessDispatch) {
  // kAuto must agree with the process-wide decision: hardware only when the
  // crypto dispatch resolved to hardware AND the CPU has SHA-NI.
  Sha256 h;
  const bool expect_hw = ActiveCryptoBackend() == CryptoBackend::kHardware &&
                         Sha256HardwareAvailable();
  EXPECT_EQ(h.hardware(), expect_hw);
  // Pinning portable always sticks; pinning hardware sticks iff available.
  EXPECT_FALSE(Sha256(CryptoBackend::kPortable).hardware());
  EXPECT_EQ(Sha256(CryptoBackend::kHardware).hardware(),
            Sha256HardwareAvailable());
}

// ---------------------------------------------------------------- HMAC
// Vectors from RFC 4231.

TEST(HmacTest, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  auto tag = HmacSha256(key, ToBytes("Hi There"));
  EXPECT_EQ(HexEncode(ByteSpan(tag.data(), tag.size())),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  auto tag = HmacSha256(ToBytes("Jefe"), ToBytes("what do ya want for nothing?"));
  EXPECT_EQ(HexEncode(ByteSpan(tag.data(), tag.size())),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, LongKeyIsHashedFirst) {
  Bytes long_key(131, 0xaa);  // RFC 4231 case 6 key size
  auto tag = HmacSha256(long_key, ToBytes("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(HexEncode(ByteSpan(tag.data(), tag.size())),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, VerifyAcceptsAndRejects) {
  Bytes key = ToBytes("k");
  Bytes msg = ToBytes("m");
  Bytes tag = HmacSha256ToBytes(key, msg);
  EXPECT_TRUE(VerifyHmacSha256(key, msg, tag));
  tag[0] ^= 1;
  EXPECT_FALSE(VerifyHmacSha256(key, msg, tag));
  EXPECT_FALSE(VerifyHmacSha256(key, ToBytes("m2"), tag));
  EXPECT_FALSE(VerifyHmacSha256(key, msg, Bytes{}));
}

// ---------------------------------------------------------------- HKDF
// Vector from RFC 5869, Test Case 1.

TEST(HkdfTest, Rfc5869Case1) {
  Bytes ikm(22, 0x0b);
  Bytes salt = HexDecode("000102030405060708090a0b0c");
  Bytes info = HexDecode("f0f1f2f3f4f5f6f7f8f9");
  auto okm = Hkdf(salt, ikm, info, 42);
  ASSERT_TRUE(okm.ok());
  EXPECT_EQ(HexEncode(*okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(HkdfTest, RejectsOverlongOutput) {
  auto r = HkdfExpand(Bytes(32, 1), {}, 255 * 32 + 1);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(HkdfTest, DifferentInfoYieldsIndependentKeys) {
  Bytes ikm = ToBytes("shared secret");
  auto a = Hkdf({}, ikm, ToBytes("client"), 32);
  auto b = Hkdf({}, ikm, ToBytes("server"), 32);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
}

TEST(HkdfTest, ExpandIsPrefixConsistent) {
  Bytes prk = HkdfExtract({}, ToBytes("ikm"));
  auto short_out = HkdfExpand(prk, ToBytes("ctx"), 16);
  auto long_out = HkdfExpand(prk, ToBytes("ctx"), 64);
  ASSERT_TRUE(short_out.ok());
  ASSERT_TRUE(long_out.ok());
  EXPECT_TRUE(std::equal(short_out->begin(), short_out->end(), long_out->begin()));
}

// ---------------------------------------------------------------- AES
// Vectors from FIPS 197 Appendix C.

TEST(AesTest, Fips197Aes128) {
  Bytes key = HexDecode("000102030405060708090a0b0c0d0e0f");
  Bytes pt = HexDecode("00112233445566778899aabbccddeeff");
  auto aes = Aes::Create(key);
  ASSERT_TRUE(aes.ok());
  EXPECT_EQ(aes->rounds(), 10);
  uint8_t ct[16];
  aes->EncryptBlock(pt.data(), ct);
  EXPECT_EQ(HexEncode(ByteSpan(ct, 16)), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(AesTest, Fips197Aes256) {
  Bytes key = HexDecode("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  Bytes pt = HexDecode("00112233445566778899aabbccddeeff");
  auto aes = Aes::Create(key);
  ASSERT_TRUE(aes.ok());
  EXPECT_EQ(aes->rounds(), 14);
  uint8_t ct[16];
  aes->EncryptBlock(pt.data(), ct);
  EXPECT_EQ(HexEncode(ByteSpan(ct, 16)), "8ea2b7ca516745bfeafc49904b496089");
}

TEST(AesTest, RejectsBadKeySizes) {
  EXPECT_FALSE(Aes::Create(Bytes(15, 0)).ok());
  EXPECT_FALSE(Aes::Create(Bytes(24, 0)).ok());  // AES-192 unsupported by design
  EXPECT_FALSE(Aes::Create(Bytes(0, 0)).ok());
}

TEST(AesTest, InPlaceEncryption) {
  Bytes key = HexDecode("000102030405060708090a0b0c0d0e0f");
  auto aes = Aes::Create(key);
  ASSERT_TRUE(aes.ok());
  uint8_t buf[16];
  Bytes pt = HexDecode("00112233445566778899aabbccddeeff");
  memcpy(buf, pt.data(), 16);
  aes->EncryptBlock(buf, buf);
  EXPECT_EQ(HexEncode(ByteSpan(buf, 16)), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

// ---------------------------------------------------------------- AES-GCM
// Vectors from the original GCM spec (McGrew & Viega), test cases 1-4.

TEST(GcmTest, SpecCase1EmptyEverything) {
  Bytes key(16, 0);
  Bytes nonce(12, 0);
  auto gcm = AesGcm::Create(key);
  ASSERT_TRUE(gcm.ok());
  auto ct = gcm->Encrypt(nonce, {}, {});
  ASSERT_TRUE(ct.ok());
  EXPECT_EQ(HexEncode(*ct), "58e2fccefa7e3061367f1d57a4e7455a");
}

TEST(GcmTest, SpecCase2SingleBlock) {
  Bytes key(16, 0);
  Bytes nonce(12, 0);
  Bytes pt(16, 0);
  auto gcm = AesGcm::Create(key);
  ASSERT_TRUE(gcm.ok());
  auto ct = gcm->Encrypt(nonce, {}, pt);
  ASSERT_TRUE(ct.ok());
  EXPECT_EQ(HexEncode(*ct),
            "0388dace60b6a392f328c2b971b2fe78"
            "ab6e47d42cec13bdf53a67b21257bddf");
}

TEST(GcmTest, SpecCase3FourBlocks) {
  Bytes key = HexDecode("feffe9928665731c6d6a8f9467308308");
  Bytes nonce = HexDecode("cafebabefacedbaddecaf888");
  Bytes pt = HexDecode(
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255");
  auto gcm = AesGcm::Create(key);
  ASSERT_TRUE(gcm.ok());
  auto ct = gcm->Encrypt(nonce, {}, pt);
  ASSERT_TRUE(ct.ok());
  EXPECT_EQ(HexEncode(*ct),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
            "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985"
            "4d5c2af327cd64a62cf35abd2ba6fab4");
}

TEST(GcmTest, SpecCase4WithAad) {
  Bytes key = HexDecode("feffe9928665731c6d6a8f9467308308");
  Bytes nonce = HexDecode("cafebabefacedbaddecaf888");
  Bytes pt = HexDecode(
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39");
  Bytes aad = HexDecode("feedfacedeadbeeffeedfacedeadbeefabaddad2");
  auto gcm = AesGcm::Create(key);
  ASSERT_TRUE(gcm.ok());
  auto ct = gcm->Encrypt(nonce, aad, pt);
  ASSERT_TRUE(ct.ok());
  EXPECT_EQ(HexEncode(*ct),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
            "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091"
            "5bc94fbc3221a5db94fae95ae7121a47");
}

TEST(GcmTest, DecryptRoundTrip) {
  Bytes key = GenerateSymmetricKey(32);
  Bytes nonce = RandomBytes(12);
  Bytes pt = ToBytes("patient record: glucose 5.4 mmol/L");
  Bytes aad = ToBytes("request-header");
  auto gcm = AesGcm::Create(key);
  ASSERT_TRUE(gcm.ok());
  auto ct = gcm->Encrypt(nonce, aad, pt);
  ASSERT_TRUE(ct.ok());
  auto back = gcm->Decrypt(nonce, aad, *ct);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, pt);
}

TEST(GcmTest, TamperedCiphertextRejected) {
  Bytes key = GenerateSymmetricKey();
  Bytes nonce = RandomBytes(12);
  auto gcm = AesGcm::Create(key);
  ASSERT_TRUE(gcm.ok());
  auto ct = gcm->Encrypt(nonce, {}, ToBytes("secret model weights"));
  ASSERT_TRUE(ct.ok());
  Bytes tampered = *ct;
  tampered[0] ^= 0x01;
  auto r = gcm->Decrypt(nonce, {}, tampered);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnauthenticated());
}

TEST(GcmTest, TamperedTagRejected) {
  Bytes key = GenerateSymmetricKey();
  Bytes nonce = RandomBytes(12);
  auto gcm = AesGcm::Create(key);
  ASSERT_TRUE(gcm.ok());
  auto ct = gcm->Encrypt(nonce, {}, ToBytes("x"));
  ASSERT_TRUE(ct.ok());
  Bytes tampered = *ct;
  tampered.back() ^= 0x80;
  EXPECT_FALSE(gcm->Decrypt(nonce, {}, tampered).ok());
}

TEST(GcmTest, WrongAadRejected) {
  Bytes key = GenerateSymmetricKey();
  Bytes nonce = RandomBytes(12);
  auto gcm = AesGcm::Create(key);
  ASSERT_TRUE(gcm.ok());
  auto ct = gcm->Encrypt(nonce, ToBytes("aad-1"), ToBytes("x"));
  ASSERT_TRUE(ct.ok());
  EXPECT_FALSE(gcm->Decrypt(nonce, ToBytes("aad-2"), *ct).ok());
}

TEST(GcmTest, WrongKeyRejected) {
  Bytes nonce = RandomBytes(12);
  auto g1 = AesGcm::Create(Bytes(16, 1));
  auto g2 = AesGcm::Create(Bytes(16, 2));
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  auto ct = g1->Encrypt(nonce, {}, ToBytes("x"));
  ASSERT_TRUE(ct.ok());
  EXPECT_FALSE(g2->Decrypt(nonce, {}, *ct).ok());
}

TEST(GcmTest, RejectsBadNonceAndShortMessages) {
  auto gcm = AesGcm::Create(Bytes(16, 0));
  ASSERT_TRUE(gcm.ok());
  EXPECT_FALSE(gcm->Encrypt(Bytes(11, 0), {}, {}).ok());
  EXPECT_FALSE(gcm->Decrypt(Bytes(12, 0), {}, Bytes(15, 0)).ok());
}

TEST(GcmTest, SealOpenRoundTrip) {
  Bytes key = GenerateSymmetricKey();
  Bytes pt = ToBytes("inference request payload");
  auto sealed = GcmSeal(key, ToBytes("hdr"), pt);
  ASSERT_TRUE(sealed.ok());
  auto opened = GcmOpen(key, ToBytes("hdr"), *sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened, pt);
}

TEST(GcmTest, SealUsesFreshNonces) {
  Bytes key = GenerateSymmetricKey();
  auto a = GcmSeal(key, {}, ToBytes("same"));
  auto b = GcmSeal(key, {}, ToBytes("same"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);  // nonce differs, so the whole message differs
}

// Round-trip across plaintext sizes spanning block boundaries.
class GcmSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(GcmSizeTest, RoundTrip) {
  size_t n = GetParam();
  Rng rng(n + 1);
  Bytes pt = rng.NextBytes(n);
  Bytes key = rng.NextBytes(16);
  Bytes nonce = rng.NextBytes(12);
  auto gcm = AesGcm::Create(key);
  ASSERT_TRUE(gcm.ok());
  auto ct = gcm->Encrypt(nonce, {}, pt);
  ASSERT_TRUE(ct.ok());
  EXPECT_EQ(ct->size(), n + kGcmTagSize);
  auto back = gcm->Decrypt(nonce, {}, *ct);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, pt);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GcmSizeTest,
                         ::testing::Values(0, 1, 15, 16, 17, 31, 32, 33, 255, 256,
                                           1000, 4096, 65537));

// NIST vectors exercising the fused-pipeline edge cases: AAD-only messages
// (the CTR/GHASH bulk loop never runs), AES-256 with empty input, and a
// partial final block with AAD (tail path + zero-padded GHASH block).

TEST(GcmTest, NistCavpAadOnly) {
  // CAVP gcmEncryptExtIV128: PTlen=0, AADlen=128, Taglen=128.
  Bytes key = HexDecode("77be63708971c4e240d1cb79e8d77feb");
  Bytes nonce = HexDecode("e0e00f19fed7ba0136a797f3");
  Bytes aad = HexDecode("7a43ec1d9c0a5a78a0b16533a6213cab");
  auto gcm = AesGcm::Create(key);
  ASSERT_TRUE(gcm.ok());
  auto ct = gcm->Encrypt(nonce, aad, {});
  ASSERT_TRUE(ct.ok());
  EXPECT_EQ(HexEncode(*ct), "209fcc8d3675ed938e9c7166709dd946");
  auto back = gcm->Decrypt(nonce, aad, *ct);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(GcmTest, SpecCase13Aes256EmptyEverything) {
  auto gcm = AesGcm::Create(Bytes(32, 0));
  ASSERT_TRUE(gcm.ok());
  auto ct = gcm->Encrypt(Bytes(12, 0), {}, {});
  ASSERT_TRUE(ct.ok());
  EXPECT_EQ(HexEncode(*ct), "530f8afbc74536b9a963b4f1c4cb738b");
}

TEST(GcmTest, SpecCase16Aes256PartialBlockWithAad) {
  Bytes key = HexDecode(
      "feffe9928665731c6d6a8f9467308308feffe9928665731c6d6a8f9467308308");
  Bytes nonce = HexDecode("cafebabefacedbaddecaf888");
  // 60-byte plaintext: the last block is partial, so both the CTR tail and
  // the zero-padded GHASH absorption are exercised.
  Bytes pt = HexDecode(
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39");
  Bytes aad = HexDecode("feedfacedeadbeeffeedfacedeadbeefabaddad2");
  auto gcm = AesGcm::Create(key);
  ASSERT_TRUE(gcm.ok());
  auto ct = gcm->Encrypt(nonce, aad, pt);
  ASSERT_TRUE(ct.ok());
  EXPECT_EQ(HexEncode(*ct),
            "522dc1f099567d07f47f37a32a84427d643a8cdcbfe5c0c97598a2bd2555d1aa"
            "8cb08e48590dbb3da7b08b1056828838c5f61e6393ba7a0abcc9f662"
            "76fc6ece0f4e1768cddf8853bb2d551b");
  auto back = gcm->Decrypt(nonce, aad, *ct);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, pt);
}

// ------------------------------------------- backend dispatch & parity
// Every known-answer vector above implicitly runs on the process-wide
// backend (hardware where available). The suites below pin each backend
// explicitly so both implementations are proven against the NIST/CAVP
// vectors and against each other, bytes-for-bytes.

struct GcmKat {
  const char* name;
  const char* key;
  const char* nonce;
  const char* aad;
  const char* plaintext;
  const char* expected;  // ciphertext || tag
};

// The spec/CAVP vectors already used individually above, gathered so the
// backend-parameterized suite replays all of them per backend.
const GcmKat kGcmKats[] = {
    {"SpecCase1", "00000000000000000000000000000000", "000000000000000000000000",
     "", "", "58e2fccefa7e3061367f1d57a4e7455a"},
    {"SpecCase2", "00000000000000000000000000000000", "000000000000000000000000",
     "", "00000000000000000000000000000000",
     "0388dace60b6a392f328c2b971b2fe78ab6e47d42cec13bdf53a67b21257bddf"},
    {"SpecCase3", "feffe9928665731c6d6a8f9467308308", "cafebabefacedbaddecaf888", "",
     "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
     "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
     "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
     "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985"
     "4d5c2af327cd64a62cf35abd2ba6fab4"},
    {"SpecCase4Aad", "feffe9928665731c6d6a8f9467308308", "cafebabefacedbaddecaf888",
     "feedfacedeadbeeffeedfacedeadbeefabaddad2",
     "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
     "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
     "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
     "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091"
     "5bc94fbc3221a5db94fae95ae7121a47"},
    {"CavpAadOnly", "77be63708971c4e240d1cb79e8d77feb", "e0e00f19fed7ba0136a797f3",
     "7a43ec1d9c0a5a78a0b16533a6213cab", "", "209fcc8d3675ed938e9c7166709dd946"},
    {"SpecCase13Aes256",
     "0000000000000000000000000000000000000000000000000000000000000000",
     "000000000000000000000000", "", "", "530f8afbc74536b9a963b4f1c4cb738b"},
    {"SpecCase16Aes256",
     "feffe9928665731c6d6a8f9467308308feffe9928665731c6d6a8f9467308308",
     "cafebabefacedbaddecaf888", "feedfacedeadbeeffeedfacedeadbeefabaddad2",
     "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
     "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
     "522dc1f099567d07f47f37a32a84427d643a8cdcbfe5c0c97598a2bd2555d1aa"
     "8cb08e48590dbb3da7b08b1056828838c5f61e6393ba7a0abcc9f662"
     "76fc6ece0f4e1768cddf8853bb2d551b"},
};

class GcmBackendTest : public ::testing::TestWithParam<CryptoBackend> {
 protected:
  void SetUp() override {
    if (GetParam() == CryptoBackend::kHardware && !HardwareCryptoAvailable()) {
      GTEST_SKIP() << "AES-NI/PCLMUL not available on this machine";
    }
    if (GetParam() == CryptoBackend::kHardwareVaes && !VaesCryptoAvailable()) {
      GTEST_SKIP() << "VAES/VPCLMULQDQ/AVX-512 not available on this machine";
    }
  }
};

TEST_P(GcmBackendTest, NistCavpVectors) {
  for (const GcmKat& kat : kGcmKats) {
    Bytes key = HexDecode(kat.key);
    Bytes nonce = HexDecode(kat.nonce);
    Bytes aad = HexDecode(kat.aad);
    Bytes pt = HexDecode(kat.plaintext);
    auto gcm = AesGcm::Create(key, GetParam());
    ASSERT_TRUE(gcm.ok()) << kat.name;
    auto ct = gcm->Encrypt(nonce, aad, pt);
    ASSERT_TRUE(ct.ok()) << kat.name;
    EXPECT_EQ(HexEncode(*ct), kat.expected) << kat.name;
    auto back = gcm->Decrypt(nonce, aad, *ct);
    ASSERT_TRUE(back.ok()) << kat.name;
    EXPECT_EQ(*back, pt) << kat.name;
  }
}

TEST_P(GcmBackendTest, BackendMatchesRequest) {
  auto gcm = AesGcm::Create(Bytes(16, 0), GetParam());
  ASSERT_TRUE(gcm.ok());
  EXPECT_EQ(gcm->hardware(), GetParam() != CryptoBackend::kPortable);
  EXPECT_EQ(gcm->vaes(), GetParam() == CryptoBackend::kHardwareVaes);
}

INSTANTIATE_TEST_SUITE_P(Backends, GcmBackendTest,
                         ::testing::Values(CryptoBackend::kPortable,
                                           CryptoBackend::kHardware,
                                           CryptoBackend::kHardwareVaes),
                         [](const ::testing::TestParamInfo<CryptoBackend>& info) {
                           std::string name = ToString(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(AesBackendTest, HardwareBlocksMatchTtables) {
  if (!HardwareCryptoAvailable()) {
    GTEST_SKIP() << "AES-NI not available on this machine";
  }
  Rng rng(321);
  for (size_t key_size : {size_t{16}, size_t{32}}) {
    Bytes key = rng.NextBytes(key_size);
    auto sw = Aes::Create(key, CryptoBackend::kPortable);
    auto hw = Aes::Create(key, CryptoBackend::kHardware);
    ASSERT_TRUE(sw.ok());
    ASSERT_TRUE(hw.ok());
    EXPECT_FALSE(sw->hardware());
    EXPECT_TRUE(hw->hardware());

    for (int trial = 0; trial < 50; ++trial) {
      Bytes in = rng.NextBytes(8 * kAesBlockSize);
      uint8_t sw_out[8 * kAesBlockSize], hw_out[8 * kAesBlockSize];

      sw->EncryptBlock(in.data(), sw_out);
      hw->EncryptBlock(in.data(), hw_out);
      ASSERT_EQ(0, memcmp(sw_out, hw_out, kAesBlockSize)) << "1-block, trial " << trial;

      sw->EncryptBlocks4(in.data(), sw_out);
      hw->EncryptBlocks4(in.data(), hw_out);
      ASSERT_EQ(0, memcmp(sw_out, hw_out, 4 * kAesBlockSize))
          << "4-block, trial " << trial;

      sw->EncryptBlocks8(in.data(), sw_out);
      hw->EncryptBlocks8(in.data(), hw_out);
      ASSERT_EQ(0, memcmp(sw_out, hw_out, 8 * kAesBlockSize))
          << "8-block, trial " << trial;

      // The wide paths must equal eight independent single-block calls.
      for (int b = 0; b < 8; ++b) {
        sw->EncryptBlock(in.data() + 16 * b, sw_out + 16 * b);
      }
      ASSERT_EQ(0, memcmp(sw_out, hw_out, 8 * kAesBlockSize))
          << "8-block vs singles, trial " << trial;
    }
  }
}

TEST(GcmBackendTest2, RandomizedHardwarePortableParity) {
  if (!HardwareCryptoAvailable()) {
    GTEST_SKIP() << "AES-NI/PCLMUL not available on this machine";
  }
  // Random key/nonce/AAD/plaintext over lengths 0..4096 (biased toward the
  // batch-width boundaries): the two backends must agree bytes-for-bytes on
  // seal, and each must open the other's output.
  Rng rng(654);
  const size_t lengths[] = {0,  1,  15,  16,  17,  63,  64,   65,   127,  128,
                            129, 255, 256, 257, 1000, 2048, 4095, 4096};
  for (size_t len : lengths) {
    for (int trial = 0; trial < 3; ++trial) {
      Bytes key = rng.NextBytes(trial % 2 == 0 ? 16 : 32);
      Bytes nonce = rng.NextBytes(12);
      Bytes aad = rng.NextBytes(rng.UniformUint64(65));
      Bytes pt = rng.NextBytes(len);
      auto sw = AesGcm::Create(key, CryptoBackend::kPortable);
      auto hw = AesGcm::Create(key, CryptoBackend::kHardware);
      ASSERT_TRUE(sw.ok());
      ASSERT_TRUE(hw.ok());

      auto sw_ct = sw->Encrypt(nonce, aad, pt);
      auto hw_ct = hw->Encrypt(nonce, aad, pt);
      ASSERT_TRUE(sw_ct.ok());
      ASSERT_TRUE(hw_ct.ok());
      ASSERT_EQ(*sw_ct, *hw_ct) << "len " << len << " trial " << trial;

      // Cross-open: hw opens sw's output and vice versa.
      auto sw_open = sw->Decrypt(nonce, aad, *hw_ct);
      auto hw_open = hw->Decrypt(nonce, aad, *sw_ct);
      ASSERT_TRUE(sw_open.ok());
      ASSERT_TRUE(hw_open.ok());
      EXPECT_EQ(*sw_open, pt);
      EXPECT_EQ(*hw_open, pt);

      // Tampering must fail identically on both.
      Bytes tampered = *hw_ct;
      tampered[tampered.size() / 2] ^= 0x40;
      EXPECT_FALSE(sw->Decrypt(nonce, aad, tampered).ok());
      EXPECT_FALSE(hw->Decrypt(nonce, aad, tampered).ok());
    }
  }
}

TEST(AesBackendTest, VaesBlocks16MatchAesni) {
  if (!VaesCryptoAvailable()) {
    GTEST_SKIP() << "VAES/AVX-512 not available on this machine";
  }
  Rng rng(777);
  for (size_t key_size : {size_t{16}, size_t{32}}) {
    Bytes key = rng.NextBytes(key_size);
    auto aesni = Aes::Create(key, CryptoBackend::kHardware);
    auto vaes = Aes::Create(key, CryptoBackend::kHardwareVaes);
    ASSERT_TRUE(aesni.ok());
    ASSERT_TRUE(vaes.ok());
    EXPECT_FALSE(aesni->vaes());
    EXPECT_TRUE(vaes->vaes());
    for (int trial = 0; trial < 50; ++trial) {
      Bytes in = rng.NextBytes(16 * kAesBlockSize);
      uint8_t narrow_out[16 * kAesBlockSize], wide_out[16 * kAesBlockSize];
      aesni->EncryptBlocks16(in.data(), narrow_out);
      vaes->EncryptBlocks16(in.data(), wide_out);
      ASSERT_EQ(0, memcmp(narrow_out, wide_out, sizeof narrow_out))
          << "16-block, trial " << trial;
    }
  }
}

TEST(GcmBackendTest2, VaesMatchesAesniAndPortable) {
  if (!VaesCryptoAvailable()) {
    GTEST_SKIP() << "VAES/VPCLMULQDQ/AVX-512 not available on this machine";
  }
  // Lengths biased around the 256-byte VAES batch boundary and the 128-byte
  // AES-NI batch it falls back to, plus long streams covering several wide
  // batches. All three tiers must agree byte-for-byte and cross-open.
  Rng rng(432);
  const size_t lengths[] = {0,   1,    127,  128,  129,  255,  256,  257,
                            383, 384,  511,  512,  513,  768,  1024, 4096,
                            4097, 8191, 8192, 16384};
  for (size_t len : lengths) {
    Bytes key = rng.NextBytes(len % 2 == 0 ? 16 : 32);
    Bytes nonce = rng.NextBytes(12);
    Bytes aad = rng.NextBytes(rng.UniformUint64(129));
    Bytes pt = rng.NextBytes(len);
    auto sw = AesGcm::Create(key, CryptoBackend::kPortable);
    auto hw = AesGcm::Create(key, CryptoBackend::kHardware);
    auto wide = AesGcm::Create(key, CryptoBackend::kHardwareVaes);
    ASSERT_TRUE(sw.ok());
    ASSERT_TRUE(hw.ok());
    ASSERT_TRUE(wide.ok());

    auto sw_ct = sw->Encrypt(nonce, aad, pt);
    auto hw_ct = hw->Encrypt(nonce, aad, pt);
    auto wide_ct = wide->Encrypt(nonce, aad, pt);
    ASSERT_TRUE(sw_ct.ok());
    ASSERT_TRUE(hw_ct.ok());
    ASSERT_TRUE(wide_ct.ok());
    ASSERT_EQ(*wide_ct, *hw_ct) << "len " << len;
    ASSERT_EQ(*wide_ct, *sw_ct) << "len " << len;

    auto open_narrow = hw->Decrypt(nonce, aad, *wide_ct);
    auto open_wide = wide->Decrypt(nonce, aad, *sw_ct);
    ASSERT_TRUE(open_narrow.ok());
    ASSERT_TRUE(open_wide.ok());
    EXPECT_EQ(*open_narrow, pt);
    EXPECT_EQ(*open_wide, pt);

    Bytes tampered = *wide_ct;
    tampered[tampered.size() / 2] ^= 0x01;
    EXPECT_FALSE(wide->Decrypt(nonce, aad, tampered).ok());
  }
}

TEST(GcmTest, CounterWrapNear2To32MatchesBlockwiseReference) {
  // SP 800-38D inc32: the CTR counter wraps modulo 2^32 while the nonce
  // bytes stay fixed. Start the J0 counter at 2^32 - 3 and stream 37 blocks
  // (plus a partial tail) so the batch paths cross the wrap mid-batch on
  // every width — 16-block (VAES), 8-block (AES-NI), 4-block, and the
  // single-block tail.
  Rng rng(99);
  const size_t len = 37 * 16 + 5;
  Bytes pt = rng.NextBytes(len);

  for (size_t key_size : {size_t{16}, size_t{32}}) {
    Bytes key = rng.NextBytes(key_size);

    uint8_t j0[16];
    Bytes nonce = rng.NextBytes(12);
    memcpy(j0, nonce.data(), 12);
    j0[12] = 0xff;
    j0[13] = 0xff;
    j0[14] = 0xff;
    j0[15] = 0xfd;  // counter = 2^32 - 3; first keystream block uses 2^32 - 2

    // Blockwise reference: single-block encryptions with a hand-maintained
    // wrapping counter (independent of the batch counter arithmetic).
    auto aes = Aes::Create(key, CryptoBackend::kPortable);
    ASSERT_TRUE(aes.ok());
    Bytes expected(len);
    uint32_t ctr = 0xfffffffd;
    uint8_t block[16], ks[16];
    memcpy(block, nonce.data(), 12);
    for (size_t off = 0; off < len; off += 16) {
      ++ctr;  // wraps through 0xffffffff -> 0x00000000
      block[12] = static_cast<uint8_t>(ctr >> 24);
      block[13] = static_cast<uint8_t>(ctr >> 16);
      block[14] = static_cast<uint8_t>(ctr >> 8);
      block[15] = static_cast<uint8_t>(ctr);
      aes->EncryptBlock(block, ks);
      const size_t take = std::min<size_t>(16, len - off);
      for (size_t i = 0; i < take; ++i) expected[off + i] = pt[off + i] ^ ks[i];
    }

    std::vector<CryptoBackend> backends = {CryptoBackend::kPortable};
    if (HardwareCryptoAvailable()) backends.push_back(CryptoBackend::kHardware);
    if (VaesCryptoAvailable()) backends.push_back(CryptoBackend::kHardwareVaes);
    Bytes first_y;
    for (CryptoBackend backend : backends) {
      auto gcm = AesGcm::Create(key, backend);
      ASSERT_TRUE(gcm.ok());
      Bytes out(len);
      uint8_t y[16] = {0};
      GcmTestPeer::CtrCryptAndHash(*gcm, j0, pt, out.data(), y,
                                   /*hash_output=*/true);
      EXPECT_EQ(out, expected) << ToString(backend) << " key " << key_size;
      // GHASH accumulators must agree across backends too.
      if (first_y.empty()) {
        first_y = Bytes(y, y + 16);
      } else {
        EXPECT_EQ(Bytes(y, y + 16), first_y) << ToString(backend);
      }
    }
  }
}

TEST(GcmTest, RejectsPlaintextBeyondNistLimit) {
  if (sizeof(size_t) < 8) {
    // A 32-bit size_t cannot even represent an over-limit length (the cast
    // below would wrap under the cap and the probe would dereference the
    // dummy span for real), and no caller can construct one either.
    GTEST_SKIP() << "size_t cannot exceed the SP 800-38D cap on this platform";
  }
  auto gcm = AesGcm::Create(Bytes(16, 0));
  ASSERT_TRUE(gcm.ok());
  // The length check fires before any byte is touched, so a span with an
  // oversize length (and no real backing store) exercises it safely.
  uint8_t dummy = 0;
  uint8_t out[1];
  ByteSpan huge(&dummy, static_cast<size_t>(kGcmMaxPlaintextSize) + 1);
  Status seal = gcm->EncryptInto(Bytes(12, 0), {}, {}, huge, out);
  EXPECT_TRUE(seal.IsInvalidArgument()) << seal.ToString();

  ByteSpan huge_ct(&dummy,
                   static_cast<size_t>(kGcmMaxPlaintextSize) + 1 + kGcmTagSize);
  Status open = gcm->DecryptInto(Bytes(12, 0), {}, {}, huge_ct, out);
  EXPECT_TRUE(open.IsInvalidArgument()) << open.ToString();

  // Exactly at the limit the *length check* passes (the walk would then read
  // the span, so only the rejection path is probed here via the keyed
  // helpers' pre-allocation guard).
  EXPECT_TRUE(GcmSealParts(Bytes(16, 0), {}, {},
                           ByteSpan(&dummy, static_cast<size_t>(kGcmMaxPlaintextSize) + 1))
                  .status()
                  .IsInvalidArgument());
}

TEST(GcmTest, SplitAadMatchesConcatenatedAad) {
  // The zero-copy parts API must hash aad_a || aad_b exactly like the
  // single-span API hashes the concatenation, for every split of a length
  // that straddles block boundaries.
  Rng rng(77);
  Bytes key = rng.NextBytes(16);
  Bytes nonce = rng.NextBytes(12);
  Bytes aad = rng.NextBytes(45);
  Bytes pt = rng.NextBytes(100);
  auto gcm = AesGcm::Create(key);
  ASSERT_TRUE(gcm.ok());
  auto expect = gcm->Encrypt(nonce, aad, pt);
  ASSERT_TRUE(expect.ok());
  for (size_t split = 0; split <= aad.size(); ++split) {
    Bytes out(pt.size() + kGcmTagSize);
    ByteSpan aad_a(aad.data(), split);
    ByteSpan aad_b(aad.data() + split, aad.size() - split);
    ASSERT_TRUE(gcm->EncryptInto(nonce, aad_a, aad_b, pt, out.data()).ok());
    EXPECT_EQ(out, *expect) << "split " << split;
    Bytes plain(pt.size());
    ASSERT_TRUE(gcm->DecryptInto(nonce, aad_a, aad_b, out, plain.data()).ok());
    EXPECT_EQ(plain, pt);
  }
}

TEST(GcmTest, SealPartsInteroperatesWithSeal) {
  Bytes key(16, 3);
  Bytes payload = ToBytes("payload bytes");
  auto sealed = GcmSealParts(key, ToBytes("prefix:"), ToBytes("model-7"), payload);
  ASSERT_TRUE(sealed.ok());
  auto opened = GcmOpen(key, ToBytes("prefix:model-7"), *sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened, payload);
  EXPECT_FALSE(GcmOpen(key, ToBytes("prefix:model-8"), *sealed).ok());
}

TEST(GcmTest, DecryptIntoZeroesOutputOnTagMismatch) {
  Bytes key(16, 4), nonce(12, 5);
  Bytes pt = ToBytes("super secret plaintext");
  auto gcm = AesGcm::Create(key);
  ASSERT_TRUE(gcm.ok());
  auto ct = gcm->Encrypt(nonce, {}, pt);
  ASSERT_TRUE(ct.ok());
  (*ct)[ct->size() - 1] ^= 1;  // corrupt the tag
  Bytes out(pt.size(), 0xee);
  EXPECT_FALSE(gcm->DecryptInto(nonce, {}, {}, *ct, out.data()).ok());
  EXPECT_EQ(out, Bytes(pt.size(), 0));  // never leaks unauthenticated bytes
}

// ---------------------------------------------------------------- X25519
// Vectors from RFC 7748 §5.2 and §6.1.

X25519Key KeyFromHex(std::string_view hex) {
  Bytes b = HexDecode(hex);
  X25519Key k{};
  std::copy(b.begin(), b.end(), k.begin());
  return k;
}

TEST(X25519Test, Rfc7748Vector1) {
  auto scalar = KeyFromHex(
      "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
  auto point = KeyFromHex(
      "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
  auto out = X25519(scalar, point);
  EXPECT_EQ(HexEncode(ByteSpan(out.data(), out.size())),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
}

TEST(X25519Test, Rfc7748Vector2) {
  auto scalar = KeyFromHex(
      "4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
  auto point = KeyFromHex(
      "e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
  auto out = X25519(scalar, point);
  EXPECT_EQ(HexEncode(ByteSpan(out.data(), out.size())),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957");
}

TEST(X25519Test, Rfc7748DiffieHellman) {
  auto alice_priv = KeyFromHex(
      "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
  auto bob_priv = KeyFromHex(
      "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
  auto alice_pub = X25519Base(alice_priv);
  auto bob_pub = X25519Base(bob_priv);
  EXPECT_EQ(HexEncode(ByteSpan(alice_pub.data(), 32)),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a");
  EXPECT_EQ(HexEncode(ByteSpan(bob_pub.data(), 32)),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f");
  auto s1 = X25519SharedSecret(alice_priv, bob_pub);
  auto s2 = X25519SharedSecret(bob_priv, alice_pub);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s1, *s2);
  EXPECT_EQ(HexEncode(*s1),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");
}

TEST(X25519Test, GeneratedPairsAgree) {
  for (int i = 0; i < 5; ++i) {
    auto a = GenerateX25519KeyPair();
    auto b = GenerateX25519KeyPair();
    auto s1 = X25519SharedSecret(a.private_key, b.public_key);
    auto s2 = X25519SharedSecret(b.private_key, a.public_key);
    ASSERT_TRUE(s1.ok());
    ASSERT_TRUE(s2.ok());
    EXPECT_EQ(*s1, *s2);
  }
}

TEST(X25519Test, RejectsLowOrderPoint) {
  auto kp = GenerateX25519KeyPair();
  X25519Key zero{};
  auto r = X25519SharedSecret(kp.private_key, zero);
  EXPECT_FALSE(r.ok());
}

// ---------------------------------------------------------------- Random / key

TEST(RandomTest, ProducesRequestedLength) {
  EXPECT_EQ(RandomBytes(0).size(), 0u);
  EXPECT_EQ(RandomBytes(33).size(), 33u);
}

TEST(RandomTest, SuccessiveCallsDiffer) {
  EXPECT_NE(RandomBytes(32), RandomBytes(32));
}

TEST(RandomTest, DeterministicModeIsReproducible) {
  SetDeterministicRandomForTesting(true, 99);
  Bytes a = RandomBytes(48);
  SetDeterministicRandomForTesting(true, 99);
  Bytes b = RandomBytes(48);
  SetDeterministicRandomForTesting(false);
  EXPECT_EQ(a, b);
  EXPECT_NE(RandomBytes(48), a);
}

TEST(KeyTest, DeriveIdentityIsStableAndDistinct) {
  Bytes k1 = ToBytes("owner long term key");
  Bytes k2 = ToBytes("user long term key");
  EXPECT_EQ(DeriveIdentity(k1), DeriveIdentity(k1));
  EXPECT_NE(DeriveIdentity(k1), DeriveIdentity(k2));
  EXPECT_EQ(DeriveIdentity(k1).size(), 64u);  // hex of 32 bytes
}

}  // namespace
}  // namespace sesemi::crypto
