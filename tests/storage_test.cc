#include <gtest/gtest.h>

#include "storage/object_store.h"

namespace sesemi::storage {
namespace {

TEST(InMemoryObjectStoreTest, PutGetRoundTrip) {
  InMemoryObjectStore store;
  ASSERT_TRUE(store.Put("models/m0", Bytes{1, 2, 3}).ok());
  auto r = store.Get("models/m0");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (Bytes{1, 2, 3}));
  EXPECT_TRUE(store.Exists("models/m0"));
  EXPECT_EQ(*store.Size("models/m0"), 3u);
}

TEST(InMemoryObjectStoreTest, MissingKeyIsNotFound) {
  InMemoryObjectStore store;
  EXPECT_TRUE(store.Get("nope").status().IsNotFound());
  EXPECT_TRUE(store.Size("nope").status().IsNotFound());
  EXPECT_TRUE(store.Delete("nope").IsNotFound());
  EXPECT_FALSE(store.Exists("nope"));
}

TEST(InMemoryObjectStoreTest, OverwriteReplaces) {
  InMemoryObjectStore store;
  ASSERT_TRUE(store.Put("k", Bytes{1}).ok());
  ASSERT_TRUE(store.Put("k", Bytes{2, 3}).ok());
  EXPECT_EQ(*store.Get("k"), (Bytes{2, 3}));
}

TEST(InMemoryObjectStoreTest, DeleteRemoves) {
  InMemoryObjectStore store;
  ASSERT_TRUE(store.Put("k", Bytes{1}).ok());
  ASSERT_TRUE(store.Delete("k").ok());
  EXPECT_FALSE(store.Exists("k"));
}

TEST(InMemoryObjectStoreTest, ListByPrefixSorted) {
  InMemoryObjectStore store;
  ASSERT_TRUE(store.Put("models/b", Bytes{}).ok());
  ASSERT_TRUE(store.Put("models/a", Bytes{}).ok());
  ASSERT_TRUE(store.Put("plain/x", Bytes{}).ok());
  auto keys = store.List("models/");
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "models/a");
  EXPECT_EQ(keys[1], "models/b");
  EXPECT_EQ(store.List("zzz").size(), 0u);
  EXPECT_EQ(store.List("").size(), 3u);
}

TEST(StorageLatencyModelTest, TransferTimeIsAffine) {
  StorageLatencyModel model{SecondsToMicros(0.01), 100e6};
  EXPECT_EQ(model.TransferTime(0), SecondsToMicros(0.01));
  // 100 MB at 100 MB/s = 1 s + base.
  EXPECT_NEAR(MicrosToSeconds(model.TransferTime(100'000'000)), 1.01, 1e-3);
}

TEST(StorageLatencyModelTest, AzurePresetMatchesPaperQuotes) {
  // §VI-A: MBNET ≈ 180 ms, DSNET ≈ 360 ms, RSNET ≈ 2100 ms (same region).
  auto azure = StorageLatencyModel::AzureBlobSameRegion();
  EXPECT_NEAR(MicrosToSeconds(azure.TransferTime(17ull << 20)), 0.18, 0.1);
  EXPECT_NEAR(MicrosToSeconds(azure.TransferTime(44ull << 20)), 0.36, 0.25);
  EXPECT_NEAR(MicrosToSeconds(azure.TransferTime(170ull << 20)), 2.1, 0.5);
}

}  // namespace
}  // namespace sesemi::storage
