// Observability tests: tracer ring overflow accounting, disabled-path and
// zero-allocation probes, trace-id propagation across batched (coalesced)
// invocations and cluster reroutes, the end-to-end connected span tree for a
// cluster-routed invocation (Snapshot AND exported Chrome trace JSON), the
// metrics registry, and histogram bucket edge cases.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <map>
#include <new>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "client/clients.h"
#include "cluster/cluster.h"
#include "common/faultpoint.h"
#include "keyservice/keyservice.h"
#include "model/zoo.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serverless/platform.h"
#include "sgx/platform.h"
#include "storage/object_store.h"

// Allocation probe: counts every global operator new in the test binary so
// the tracer's hot-path zero-allocation guarantee is enforced, not assumed.
static std::atomic<uint64_t> g_allocs{0};

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace sesemi {
namespace {

using client::KeyServiceClient;
using client::ModelOwner;
using client::ModelUser;

// Every tracer test leaves the tracer disabled and at default capacity so
// test order cannot leak spans across cases.
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::Disable();
    obs::Tracer::Reset();
  }
  void TearDown() override {
    obs::Tracer::Disable();
    obs::Tracer::Reset();
  }
};

// ---------------------------------------------------------------- rings

TEST_F(TracerTest, RingOverflowDropsNewestAndCounts) {
  obs::Tracer::Reset(/*ring_capacity=*/4);
  obs::Tracer::Enable();
  for (int i = 0; i < 10; ++i) {
    obs::Span span("obs.test.overflow");
    span.set_arg("i", i);
  }
  obs::Tracer::Disable();
  obs::TraceSnapshot snapshot = obs::Tracer::Snap();
  EXPECT_EQ(snapshot.spans.size(), 4u);
  EXPECT_EQ(snapshot.dropped, 6u);
  // The surviving spans are the OLDEST four (drop-newest semantics).
  for (const obs::SpanRecord& span : snapshot.spans) {
    EXPECT_LT(span.arg, 4) << "ring kept a span that should have been dropped";
  }
}

TEST_F(TracerTest, ResetClearsSpansAndDropCounter) {
  obs::Tracer::Reset(/*ring_capacity=*/2);
  obs::Tracer::Enable();
  for (int i = 0; i < 5; ++i) obs::Span span("obs.test.reset");
  obs::Tracer::Reset();
  obs::TraceSnapshot snapshot = obs::Tracer::Snap();
  EXPECT_TRUE(snapshot.spans.empty());
  EXPECT_EQ(snapshot.dropped, 0u);
}

// ---------------------------------------------------------------- contexts

TEST_F(TracerTest, DisabledPathRecordsNothingAndMintsNothing) {
  {
    obs::Span span("obs.test.disabled");
    EXPECT_FALSE(span.context().valid());
  }
  EXPECT_FALSE(obs::Tracer::EmitSpan({}, "obs.test.disabled", 0, 1).valid());
  EXPECT_TRUE(obs::Tracer::Snap().spans.empty());
}

TEST_F(TracerTest, NestedSpansShareTraceAndChainParents) {
  obs::Tracer::Enable();
  obs::TraceContext outer_ctx, inner_ctx;
  {
    obs::Span outer("obs.test.outer");
    outer_ctx = outer.context();
    {
      obs::Span inner("obs.test.inner");
      inner_ctx = inner.context();
    }
    // TLS current restored after the inner span closes.
    EXPECT_EQ(obs::Tracer::Current().span_id, outer_ctx.span_id);
  }
  obs::Tracer::Disable();

  obs::TraceSnapshot snapshot = obs::Tracer::Snap();
  ASSERT_EQ(snapshot.spans.size(), 2u);
  std::map<uint64_t, obs::SpanRecord> by_id;
  for (const auto& span : snapshot.spans) by_id[span.span_id] = span;
  ASSERT_TRUE(by_id.count(inner_ctx.span_id));
  ASSERT_TRUE(by_id.count(outer_ctx.span_id));
  EXPECT_EQ(by_id[inner_ctx.span_id].trace_id, outer_ctx.trace_id);
  EXPECT_EQ(by_id[inner_ctx.span_id].parent_id, outer_ctx.span_id);
  EXPECT_EQ(by_id[outer_ctx.span_id].parent_id, 0u);
}

TEST_F(TracerTest, ExplicitContextPropagatesAcrossThreads) {
  obs::Tracer::Enable();
  obs::TraceContext parent;
  {
    obs::Span root("obs.test.handoff_root");
    parent = root.context();
    std::thread worker([parent] {
      obs::Span continued("obs.test.handoff_worker", parent);
    });
    worker.join();
  }
  obs::Tracer::Disable();

  obs::TraceSnapshot snapshot = obs::Tracer::Snap();
  ASSERT_EQ(snapshot.spans.size(), 2u);
  const obs::SpanRecord* worker_span = nullptr;
  for (const auto& span : snapshot.spans) {
    if (std::string(span.name) == "obs.test.handoff_worker") worker_span = &span;
  }
  ASSERT_NE(worker_span, nullptr);
  EXPECT_EQ(worker_span->trace_id, parent.trace_id);
  EXPECT_EQ(worker_span->parent_id, parent.span_id);
}

// ---------------------------------------------------------------- overhead

TEST_F(TracerTest, EnabledRecordPathDoesNotAllocate) {
  obs::Tracer::Reset(/*ring_capacity=*/4096);
  obs::Tracer::Enable();
  { obs::Span warmup("obs.test.warmup"); }  // allocate this thread's ring

  const uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    obs::Span span("obs.test.noalloc");
    span.set_arg("i", i);
  }
  const uint64_t after = g_allocs.load(std::memory_order_relaxed);
  obs::Tracer::Disable();
  EXPECT_EQ(after, before) << "span record path heap-allocated";
}

TEST_F(TracerTest, DisabledPathIsAllocationFreeAndCheap) {
  obs::Tracer::Disable();
  const uint64_t before = g_allocs.load(std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 1000000; ++i) {
    obs::Span span("obs.test.disabled_cost");
    span.set_arg("i", i);
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(g_allocs.load(std::memory_order_relaxed), before);
  // One relaxed load + branch per probe end; microseconds per span would
  // mean the gate broke. Generous bound for sanitizer runs.
  EXPECT_LT(wall_s, 5.0);
}

// ---------------------------------------------------------------- rollup

TEST_F(TracerTest, RollupAggregatesByName) {
  obs::Tracer::Enable();
  obs::Tracer::EmitSpan({}, "obs.test.stage_a", 0, 10);
  obs::Tracer::EmitSpan({}, "obs.test.stage_a", 0, 30);
  obs::Tracer::EmitSpan({}, "obs.test.stage_b", 5, 10);
  obs::Tracer::Disable();
  std::vector<obs::StageRollup> rollup = obs::Tracer::Rollup();
  ASSERT_EQ(rollup.size(), 2u);
  const obs::StageRollup& a = rollup[0];
  EXPECT_STREQ(a.name, "obs.test.stage_a");
  EXPECT_EQ(a.count, 2u);
  EXPECT_EQ(a.total, 40);
  EXPECT_EQ(a.min, 10);
  EXPECT_EQ(a.max, 30);
  EXPECT_DOUBLE_EQ(a.mean_us(), 20.0);
  EXPECT_EQ(rollup[1].total, 5);
}

// ---------------------------------------------------------------- metrics

TEST(HistogramTest, BoundaryValueLandsInItsBucket) {
  obs::Histogram h({1.0, 2.0, 5.0});
  h.Observe(1.0);  // == bound: le semantics put it in the le=1 bucket
  h.Observe(2.5);
  h.Observe(5.0);
  EXPECT_EQ(h.CumulativeCount(0), 1u);  // le=1
  EXPECT_EQ(h.CumulativeCount(1), 1u);  // le=2
  EXPECT_EQ(h.CumulativeCount(2), 3u);  // le=5 (2.5 and 5.0 both land here)
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_DOUBLE_EQ(h.Sum(), 8.5);
}

TEST(HistogramTest, OverflowAndUnderflowEdges) {
  obs::Histogram h({1.0});
  h.Observe(1000.0);  // above the last bound: +Inf bucket only
  h.Observe(-3.0);    // below everything: first bucket
  h.Observe(0.0);
  EXPECT_EQ(h.CumulativeCount(0), 2u);  // le=1 holds -3 and 0
  EXPECT_EQ(h.CumulativeCount(1), 3u);  // +Inf == Count()
  EXPECT_EQ(h.Count(), 3u);
}

TEST(HistogramTest, LatencyBoundsAreAscending) {
  const std::vector<double> bounds = obs::Histogram::LatencyBounds();
  ASSERT_GE(bounds.size(), 4u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(MetricsRegistryTest, InstrumentsAreKeyedByNameAndLabels) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.GetCounter("reqs", {{"node", "0"}});
  obs::Counter* b = registry.GetCounter("reqs", {{"node", "0"}});
  obs::Counter* c = registry.GetCounter("reqs", {{"node", "1"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  a->Inc(3);
  c->Inc();
  std::vector<obs::Sample> samples = registry.Snapshot();
  ASSERT_EQ(samples.size(), 2u);
  double total = 0;
  for (const auto& sample : samples) {
    EXPECT_EQ(sample.name, "reqs");
    total += sample.value;
  }
  EXPECT_DOUBLE_EQ(total, 4.0);
}

TEST(MetricsRegistryTest, HistogramSnapshotExpandsToPrometheusSeries) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("latency_seconds", {0.1, 1.0});
  h->Observe(0.05);
  h->Observe(0.5);
  h->Observe(10.0);

  std::map<std::string, double> buckets;
  double sum = -1, count = -1;
  for (const obs::Sample& sample : registry.Snapshot()) {
    if (sample.kind == obs::SampleKind::kHistogramBucket) {
      ASSERT_FALSE(sample.labels.empty());
      EXPECT_EQ(sample.labels.back().first, "le");
      buckets[sample.labels.back().second] = sample.value;
    } else if (sample.kind == obs::SampleKind::kHistogramSum) {
      sum = sample.value;
    } else if (sample.kind == obs::SampleKind::kHistogramCount) {
      count = sample.value;
    }
  }
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_DOUBLE_EQ(buckets["0.1"], 1.0);
  EXPECT_DOUBLE_EQ(buckets["1"], 2.0);     // cumulative
  EXPECT_DOUBLE_EQ(buckets["+Inf"], 3.0);  // cumulative == count
  EXPECT_DOUBLE_EQ(sum, 10.55);
  EXPECT_DOUBLE_EQ(count, 3.0);

  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"+Inf\"} 3"), std::string::npos)
      << text;
  EXPECT_NE(text.find("latency_seconds_count 3"), std::string::npos) << text;
}

TEST(MetricsRegistryTest, CollectorsRunAtSnapshotAndScopedDeregisters) {
  obs::MetricsRegistry registry;
  int scrapes = 0;
  {
    obs::ScopedCollector collector(&registry, [&scrapes] {
      scrapes++;
      return std::vector<obs::Sample>{obs::MakeCounterSample("scraped", 7)};
    });
    std::vector<obs::Sample> samples = registry.Snapshot();
    EXPECT_EQ(scrapes, 1);
    ASSERT_EQ(samples.size(), 1u);
    EXPECT_EQ(samples[0].name, "scraped");
    EXPECT_DOUBLE_EQ(samples[0].value, 7.0);
  }
  // Deregistered: the dangling capture must never run again.
  EXPECT_TRUE(registry.Snapshot().empty());
  EXPECT_EQ(scrapes, 1);
}

TEST(MetricsRegistryTest, PrometheusTextEscapesLabelValues) {
  obs::MetricsRegistry registry;
  registry.GetCounter("odd", {{"path", "a\"b\\c"}})->Inc();
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("odd{path=\"a\\\"b\\\\c\"} 1"), std::string::npos) << text;
}

// ---------------------------------------------------------------- live rig

// Full dataplane fixture (KeyService + model + cluster of real platforms):
// the propagation and span-tree tests drive real invocations.
class ObsLiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::Disable();
    obs::Tracer::Reset();
    auto server = keyservice::StartKeyService(&ks_platform_);
    ASSERT_TRUE(server.ok());
    keyservice_ = std::move(*server);
    auto ks_client = KeyServiceClient::Connect(
        keyservice_.get(), &authority_,
        keyservice::KeyServiceEnclave::ExpectedMeasurement());
    ASSERT_TRUE(ks_client.ok());
    client_ = std::move(*ks_client);

    owner_ = std::make_unique<ModelOwner>("owner");
    user_ = std::make_unique<ModelUser>("user");
    ASSERT_TRUE(owner_->Register(client_.get()).ok());
    ASSERT_TRUE(user_->Register(client_.get()).ok());

    model::ZooSpec spec;
    spec.model_id = "m0";
    spec.scale = 0.002;
    spec.input_hw = 16;
    auto graph = model::BuildModel(spec);
    ASSERT_TRUE(graph.ok());
    graph_ = *graph;
    ASSERT_TRUE(owner_->DeployModel(client_.get(), &storage_, *graph).ok());

    sgx::Measurement es = semirt::SemirtInstance::MeasurementFor({});
    ASSERT_TRUE(owner_->GrantAccess(client_.get(), "m0", es, user_->id()).ok());
    ASSERT_TRUE(user_->ProvisionRequestKey(client_.get(), "m0", es).ok());
  }

  void TearDown() override {
    obs::Tracer::Disable();
    obs::Tracer::Reset();
    FaultInjector::Instance().DisarmAll();
  }

  semirt::InferenceRequest BuildRequest(uint64_t seed = 1) {
    Bytes input = model::GenerateRandomInput(graph_, seed);
    auto request = user_->BuildRequest("m0", input);
    EXPECT_TRUE(request.ok());
    return *request;
  }

  // Dispatcher threads close their spans after resolving the caller's
  // future, so tests poll for the record instead of racing it.
  static int CountSpans(const obs::TraceSnapshot& snapshot, const char* name) {
    int n = 0;
    for (const auto& span : snapshot.spans) {
      if (span.name != nullptr && std::string(span.name) == name) n++;
    }
    return n;
  }

  static obs::TraceSnapshot WaitForSpans(const char* name, int count) {
    for (int i = 0; i < 400; ++i) {
      obs::TraceSnapshot snapshot = obs::Tracer::Snap();
      if (CountSpans(snapshot, name) >= count) return snapshot;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return obs::Tracer::Snap();
  }

  sgx::AttestationAuthority authority_;
  sgx::SgxPlatform ks_platform_{sgx::SgxGeneration::kSgx2, &authority_};
  std::unique_ptr<keyservice::KeyServiceServer> keyservice_;
  std::unique_ptr<KeyServiceClient> client_;
  std::unique_ptr<ModelOwner> owner_;
  std::unique_ptr<ModelUser> user_;
  storage::InMemoryObjectStore storage_;
  model::ModelGraph graph_;
};

TEST_F(ObsLiveTest, CoalescedBatchCarriesEveryRequestTrace) {
  serverless::PlatformConfig config;
  config.max_inflight = 1;
  serverless::ServerlessPlatform platform(config, &authority_, &storage_,
                                          keyservice_.get());
  serverless::FunctionSpec spec;
  spec.name = "f";
  spec.sched.max_batch = 8;
  ASSERT_TRUE(platform.DeployFunction(spec).ok());

  // Warm the container outside the traced window.
  ASSERT_TRUE(platform.Invoke("f", BuildRequest()).ok());

  obs::Tracer::Reset();
  obs::Tracer::Enable();
  constexpr int kRequests = 4;
  platform.PauseDispatch();
  std::vector<std::future<serverless::InvocationResult>> futures;
  std::vector<obs::TraceContext> submit_traces;
  for (int i = 0; i < kRequests; ++i) {
    obs::Span caller("obs.test.caller");
    submit_traces.push_back(caller.context());
    futures.push_back(platform.InvokeAsync("f", BuildRequest(i + 2)));
  }
  platform.ResumeDispatch();
  int max_batch_seen = 0;
  for (auto& future : futures) {
    serverless::InvocationResult result = future.get();
    ASSERT_TRUE(result.response.ok()) << result.response.status().ToString();
    max_batch_seen = std::max(max_batch_seen, result.batch_size);
  }
  ASSERT_GT(max_batch_seen, 1) << "backlog did not coalesce";

  // The dispatch span closes (and records) after the futures resolve.
  WaitForSpans(obs::spans::kDispatch, 1);
  obs::TraceSnapshot snapshot = WaitForSpans(obs::spans::kQueueWait, kRequests);
  obs::Tracer::Disable();

  // Every request's own trace got a queue-wait span...
  EXPECT_EQ(CountSpans(snapshot, obs::spans::kQueueWait), kRequests);
  std::set<uint64_t> wait_traces, dispatch_traces;
  std::vector<const obs::SpanRecord*> coalesced;
  for (const auto& span : snapshot.spans) {
    if (span.name == nullptr) continue;
    const std::string name = span.name;
    if (name == obs::spans::kQueueWait) wait_traces.insert(span.trace_id);
    if (name == obs::spans::kDispatch) dispatch_traces.insert(span.trace_id);
    if (name == obs::spans::kCoalesced) coalesced.push_back(&span);
  }
  for (const obs::TraceContext& submitted : submit_traces) {
    EXPECT_TRUE(wait_traces.count(submitted.trace_id))
        << "request trace lost across the queue";
  }
  // ...and each coalesced companion points at the head trace that carries
  // the shared dispatch/ecall spans.
  ASSERT_FALSE(coalesced.empty());
  for (const obs::SpanRecord* span : coalesced) {
    ASSERT_STREQ(span->arg_name, "head_trace");
    EXPECT_TRUE(dispatch_traces.count(static_cast<uint64_t>(span->arg)))
        << "coalesced marker points at no dispatched trace";
    EXPECT_NE(span->trace_id, static_cast<uint64_t>(span->arg))
        << "companion should reference the head's trace, not its own";
  }
}

TEST_F(ObsLiveTest, ClusterRerouteEmitsInstantInRequestTrace) {
  cluster::ClusterConfig config;
  config.initial_nodes = 2;
  cluster::ClusterDataplane dataplane(config, &authority_, &storage_,
                                      keyservice_.get());
  serverless::FunctionSpec spec;
  spec.name = "f";
  ASSERT_TRUE(dataplane.DeployFunction(spec).ok());

  // Find the home node with an untraced invocation, then poison its
  // dispatch probe so the traced request must reroute.
  {
    serverless::InvocationResult out =
        dataplane.InvokeAsync("f", BuildRequest()).get();
    ASSERT_TRUE(out.response.ok());
  }
  int home = -1;
  cluster::ClusterStats stats = dataplane.stats();
  for (const auto& node : stats.nodes) {
    if (node.routed > 0) home = node.node;
  }
  ASSERT_GE(home, 0);

  FaultConfig always_fail;
  always_fail.probability = 1.0;
  always_fail.error_code = StatusCode::kUnavailable;
  ScopedFault fault(cluster::NodeDispatchFaultPoint(home), always_fail);

  obs::Tracer::Reset();
  obs::Tracer::Enable();
  serverless::InvocationResult out =
      dataplane.InvokeAsync("f", BuildRequest(2)).get();
  ASSERT_TRUE(out.response.ok()) << out.response.status().ToString();
  obs::TraceSnapshot snapshot = WaitForSpans(obs::spans::kClusterReroute, 1);
  obs::Tracer::Disable();

  uint64_t route_trace = 0;
  for (const auto& span : snapshot.spans) {
    if (span.name != nullptr &&
        std::string(span.name) == obs::spans::kClusterRoute) {
      route_trace = span.trace_id;
    }
  }
  ASSERT_NE(route_trace, 0u);
  bool found = false;
  for (const auto& span : snapshot.spans) {
    if (span.name == nullptr ||
        std::string(span.name) != obs::spans::kClusterReroute) {
      continue;
    }
    found = true;
    EXPECT_EQ(span.trace_id, route_trace)
        << "reroute instant escaped the request's trace";
    ASSERT_STREQ(span.arg_name, "node");
    EXPECT_EQ(span.arg, home);
  }
  EXPECT_TRUE(found);
}

TEST_F(ObsLiveTest, ClusterInvocationYieldsConnectedSpanTree) {
  cluster::ClusterConfig config;
  config.initial_nodes = 2;
  cluster::ClusterDataplane dataplane(config, &authority_, &storage_,
                                      keyservice_.get());
  serverless::FunctionSpec spec;
  spec.name = "f";
  ASSERT_TRUE(dataplane.DeployFunction(spec).ok());

  obs::Tracer::Reset();
  obs::Tracer::Enable();
  serverless::InvocationResult out =
      dataplane.InvokeAsync("f", BuildRequest()).get();
  ASSERT_TRUE(out.response.ok()) << out.response.status().ToString();
  WaitForSpans(obs::spans::kInference, 1);
  obs::TraceSnapshot snapshot = WaitForSpans(obs::spans::kDispatch, 1);
  obs::Tracer::Disable();

  std::map<uint64_t, const obs::SpanRecord*> by_id;
  std::map<std::string, const obs::SpanRecord*> by_name;
  for (const auto& span : snapshot.spans) {
    if (span.name == nullptr) continue;
    by_id[span.span_id] = &span;
    by_name[span.name] = &span;
  }

  // The advertised chain, bottom-up: every stage must be present and every
  // parent edge must resolve to a recorded span in the same trace, ending
  // at the cluster.route root.
  for (const char* name :
       {obs::spans::kClusterRoute, obs::spans::kPlatformSubmit,
        obs::spans::kDispatch, obs::spans::kColdStart, obs::spans::kRequest,
        obs::spans::kEcall, obs::spans::kKeyFetch, obs::spans::kHandshake,
        obs::spans::kModelLoad, obs::spans::kRuntimeInit, obs::spans::kDecrypt,
        obs::spans::kInference, obs::spans::kEncrypt}) {
    EXPECT_TRUE(by_name.count(name)) << "missing span: " << name;
  }
  ASSERT_TRUE(by_name.count(obs::spans::kClusterRoute));
  ASSERT_TRUE(by_name.count(obs::spans::kInference));
  const obs::SpanRecord* root = by_name[obs::spans::kClusterRoute];
  EXPECT_EQ(root->parent_id, 0u);

  const obs::SpanRecord* node = by_name[obs::spans::kInference];
  std::set<std::string> chain;
  int hops = 0;
  while (node->parent_id != 0 && hops++ < 32) {
    EXPECT_EQ(node->trace_id, root->trace_id) << node->name;
    // Stage spans are reconstructed backwards from component durations;
    // allow a little cross-clock slack at the root boundary.
    EXPECT_LE(root->start - 2000, node->start) << node->name;
    auto parent = by_id.find(node->parent_id);
    ASSERT_NE(parent, by_id.end())
        << node->name << " has an unrecorded parent span";
    node = parent->second;
    chain.insert(node->name);
  }
  EXPECT_EQ(node->span_id, root->span_id)
      << "walking parents from the inference stage must reach cluster.route";
  EXPECT_TRUE(chain.count(obs::spans::kEcall));
  EXPECT_TRUE(chain.count(obs::spans::kDispatch));
  EXPECT_TRUE(chain.count(obs::spans::kPlatformSubmit));

  // The same connected tree must survive export: every recorded span of the
  // request's trace appears in the Chrome JSON with its ids intact.
  const std::string json = obs::ToChromeTraceJson(snapshot);
  char trace_hex[32];
  std::snprintf(trace_hex, sizeof(trace_hex), "\"trace\":\"%llx\"",
                static_cast<unsigned long long>(root->trace_id));
  int exported = 0;
  for (size_t at = json.find(trace_hex); at != std::string::npos;
       at = json.find(trace_hex, at + 1)) {
    exported++;
  }
  int recorded = 0;
  for (const auto& span : snapshot.spans) recorded += span.trace_id == root->trace_id;
  EXPECT_EQ(exported, recorded);
  for (const char* name :
       {"cluster.route", "platform.dispatch", "semirt.ecall",
        "semirt.inference", "\"ph\":\"X\""}) {
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }
  char parent_hex[32];
  std::snprintf(parent_hex, sizeof(parent_hex), "\"parent\":\"%llx\"",
                static_cast<unsigned long long>(root->span_id));
  EXPECT_NE(json.find(parent_hex), std::string::npos)
      << "route's children must reference its span id in the export";
}

TEST_F(ObsLiveTest, PlatformMetricsSurfaceInRegistry) {
  serverless::PlatformConfig config;
  serverless::ServerlessPlatform platform(config, &authority_, &storage_,
                                          keyservice_.get());
  serverless::FunctionSpec spec;
  spec.name = "f";
  ASSERT_TRUE(platform.DeployFunction(spec).ok());

  obs::MetricsRegistry registry;
  platform.RegisterMetrics(&registry, {{"node", "7"}});
  // Async path: this one goes through the scheduler, so the sched counters
  // move too.
  ASSERT_TRUE(platform.InvokeAsync("f", BuildRequest()).get().response.ok());

  double invocations = -1, cold_starts = -1;
  for (const obs::Sample& sample : registry.Snapshot()) {
    if (sample.name == "sesemi_platform_invocations_total") {
      invocations = sample.value;
      ASSERT_FALSE(sample.labels.empty());
      EXPECT_EQ(sample.labels.front().first, "node");
      EXPECT_EQ(sample.labels.front().second, "7");
    }
    if (sample.name == "sesemi_platform_cold_starts_total") {
      cold_starts = sample.value;
    }
  }
  EXPECT_DOUBLE_EQ(invocations, 1.0);
  EXPECT_DOUBLE_EQ(cold_starts, 1.0);
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("sesemi_sched_dispatched_total{node=\"7\"} 1"),
            std::string::npos)
      << text;
}

}  // namespace
}  // namespace sesemi
