#include "common/faultpoint.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

// ---------------------------------------------------------------- alloc probe
// Global operator new override (this test binary only): counts allocations
// while armed, so the "disarmed probe is zero-overhead" claim is enforced,
// not just asserted in a comment (same idiom as compiled_model_test.cc).
namespace {
std::atomic<bool> g_count_allocations{false};
std::atomic<uint64_t> g_allocation_count{0};
}  // namespace

void* operator new(std::size_t n) {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace sesemi {
namespace {

// A function body carrying the probe, exactly as production call sites do.
Status ProbedOperation() {
  SESEMI_FAULT_POINT(faults::kStorageGet);
  return Status::OK();
}

class FaultPointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Instance().DisarmAll();
    FaultInjector::Instance().Reseed(0x5e5e31);
  }
  void TearDown() override { FaultInjector::Instance().DisarmAll(); }
};

TEST_F(FaultPointTest, DisarmedProbeIsZeroOverhead) {
  ASSERT_FALSE(FaultInjector::AnyArmed());
  g_allocation_count.store(0, std::memory_order_relaxed);
  g_count_allocations.store(true, std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    Status s = ProbedOperation();
    if (!s.ok()) break;  // never taken; keeps the call from being elided
  }
  g_count_allocations.store(false, std::memory_order_relaxed);
  EXPECT_EQ(g_allocation_count.load(std::memory_order_relaxed), 0u);
  // The slow path was never entered: no evaluation was even recorded.
  EXPECT_EQ(FaultInjector::Instance().total_evaluations(), 0u);
}

TEST_F(FaultPointTest, ArmedPointFiresWithTypedError) {
  FaultConfig config;
  config.probability = 1.0;
  config.error_code = StatusCode::kCorruption;
  ScopedFault fault(faults::kStorageGet, config);
  ASSERT_TRUE(FaultInjector::AnyArmed());

  Status s = ProbedOperation();
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_NE(s.message().find("storage.object.get"), std::string::npos);

  FaultPointStats stats = FaultInjector::Instance().stats(faults::kStorageGet);
  EXPECT_EQ(stats.evaluations, 1u);
  EXPECT_EQ(stats.fires, 1u);
}

TEST_F(FaultPointTest, UnarmedPointPassesWhileAnotherIsArmed) {
  ScopedFault fault(faults::kRatlsHandshake, FaultConfig{});
  // kStorageGet is not armed: its probe evaluates (the global gate is up)
  // but passes.
  EXPECT_TRUE(ProbedOperation().ok());
  EXPECT_EQ(FaultInjector::Instance().stats(faults::kStorageGet).fires, 0u);
}

TEST_F(FaultPointTest, SkipFirstAndMaxFiresBudget) {
  FaultConfig config;
  config.probability = 1.0;
  config.skip_first = 2;
  config.max_fires = 3;
  ScopedFault fault(faults::kStorageGet, config);

  std::vector<bool> fired;
  for (int i = 0; i < 8; ++i) fired.push_back(!ProbedOperation().ok());
  // Evaluations 1-2 skipped, 3-5 fire, 6+ exhausted the budget.
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, true, true,
                                      false, false, false}));
  EXPECT_EQ(FaultInjector::Instance().stats(faults::kStorageGet).fires, 3u);
}

TEST_F(FaultPointTest, LatencyOnlyPointNeverFails) {
  FaultConfig config;
  config.probability = 1.0;
  config.error_code = StatusCode::kOk;  // stall-only
  config.latency_micros = 0;
  ScopedFault fault(faults::kStorageGet, config);

  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ProbedOperation().ok());
  EXPECT_EQ(FaultInjector::Instance().stats(faults::kStorageGet).fires, 5u);
}

TEST_F(FaultPointTest, DeterministicUnderFixedSeed) {
  FaultConfig config;
  config.probability = 0.3;

  auto run = [&]() {
    FaultInjector::Instance().DisarmAll();
    FaultInjector::Instance().Reseed(0xfeedbeef);
    FaultInjector::Instance().Arm(faults::kStorageGet, config);
    std::vector<bool> pattern;
    for (int i = 0; i < 200; ++i) pattern.push_back(!ProbedOperation().ok());
    FaultInjector::Instance().Disarm(faults::kStorageGet);
    return pattern;
  };

  std::vector<bool> first = run();
  std::vector<bool> second = run();
  EXPECT_EQ(first, second);  // bit-identical replay under the same seed
  size_t fires = 0;
  for (bool b : first) fires += b ? 1 : 0;
  EXPECT_GT(fires, 0u);
  EXPECT_LT(fires, first.size());
}

TEST_F(FaultPointTest, ScopedFaultDisarmsOnScopeExit) {
  {
    ScopedFault fault(faults::kServerlessDispatch, FaultConfig{});
    EXPECT_TRUE(FaultInjector::AnyArmed());
  }
  EXPECT_FALSE(FaultInjector::AnyArmed());
  EXPECT_TRUE(ProbedOperation().ok());
}

TEST_F(FaultPointTest, RearmResetsCountersAndReplacesConfig) {
  FaultConfig always;
  always.probability = 1.0;
  FaultInjector::Instance().Arm(faults::kStorageGet, always);
  EXPECT_FALSE(ProbedOperation().ok());

  FaultConfig never;
  never.probability = 0.0;
  FaultInjector::Instance().Arm(faults::kStorageGet, never);
  EXPECT_TRUE(ProbedOperation().ok());
  FaultPointStats stats = FaultInjector::Instance().stats(faults::kStorageGet);
  EXPECT_EQ(stats.evaluations, 1u);  // re-arming reset the counters
  EXPECT_EQ(stats.fires, 0u);
}

}  // namespace
}  // namespace sesemi
