#include <gtest/gtest.h>

#include "crypto/key.h"
#include "model/format.h"
#include "model/graph.h"
#include "model/zoo.h"

namespace sesemi::model {
namespace {

ZooSpec SmallSpec(Architecture arch, const std::string& id = "m0") {
  ZooSpec spec;
  spec.model_id = id;
  spec.arch = arch;
  spec.scale = 0.002;  // tens of kilobytes: fast tests
  spec.input_hw = 16;
  return spec;
}

// ---------------------------------------------------------------- Zoo

class ZooArchTest : public ::testing::TestWithParam<Architecture> {};

TEST_P(ZooArchTest, BuildsValidGraph) {
  auto graph = BuildModel(SmallSpec(GetParam()));
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_TRUE(graph->Validate().ok());
  EXPECT_EQ(graph->architecture, ToString(GetParam()));
  EXPECT_EQ(graph->OutputClasses(), 10);
  EXPECT_EQ(graph->layers.back().kind, LayerKind::kSoftmax);
}

TEST_P(ZooArchTest, SerializedSizeHitsTarget) {
  ZooSpec spec = SmallSpec(GetParam());
  spec.scale = 0.01;
  auto graph = BuildModel(spec);
  ASSERT_TRUE(graph.ok());
  uint64_t target = static_cast<uint64_t>(spec.scale * PaperModelBytes(spec.arch));
  uint64_t actual = SerializeModel(*graph).size();
  EXPECT_NEAR(static_cast<double>(actual), static_cast<double>(target),
              0.05 * static_cast<double>(target))
      << "arch " << ToString(spec.arch);
}

TEST_P(ZooArchTest, DeterministicForSameSeed) {
  auto a = BuildModel(SmallSpec(GetParam()));
  auto b = BuildModel(SmallSpec(GetParam()));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(SerializeModel(*a), SerializeModel(*b));
}

TEST_P(ZooArchTest, DifferentSeedsGiveDifferentWeights) {
  ZooSpec s1 = SmallSpec(GetParam());
  ZooSpec s2 = SmallSpec(GetParam());
  s2.seed = s1.seed + 1;
  auto a = BuildModel(s1);
  auto b = BuildModel(s2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->weights, b->weights);
}

INSTANTIATE_TEST_SUITE_P(AllArchitectures, ZooArchTest,
                         ::testing::Values(Architecture::kMbNet,
                                           Architecture::kRsNet,
                                           Architecture::kDsNet));

TEST(ZooTest, ArchitectureCharacteristicsPresent) {
  auto count_kind = [](const ModelGraph& g, LayerKind k) {
    int n = 0;
    for (const auto& layer : g.layers) n += (layer.kind == k);
    return n;
  };
  auto mbnet = BuildModel(SmallSpec(Architecture::kMbNet));
  auto rsnet = BuildModel(SmallSpec(Architecture::kRsNet));
  auto dsnet = BuildModel(SmallSpec(Architecture::kDsNet));
  ASSERT_TRUE(mbnet.ok() && rsnet.ok() && dsnet.ok());
  EXPECT_GT(count_kind(*mbnet, LayerKind::kDepthwiseConv2d), 0);
  EXPECT_EQ(count_kind(*mbnet, LayerKind::kAdd), 0);
  EXPECT_GT(count_kind(*rsnet, LayerKind::kAdd), 0);       // residual blocks
  EXPECT_GT(count_kind(*dsnet, LayerKind::kConcat), 0);    // dense blocks
  // ResNet101 analogue is the deepest.
  EXPECT_GT(rsnet->layers.size(), mbnet->layers.size());
}

TEST(ZooTest, PaperSizesMatchTableOne) {
  EXPECT_EQ(PaperModelBytes(Architecture::kMbNet), 17ull << 20);
  EXPECT_EQ(PaperModelBytes(Architecture::kRsNet), 170ull << 20);
  EXPECT_EQ(PaperModelBytes(Architecture::kDsNet), 44ull << 20);
}

TEST(ZooTest, HybNetIsDeepMixedConvDense) {
  // The scenario model (not from the paper): residual conv stages plus a
  // dense trunk, with channel counts off the 16-wide panel grid so packed
  // GEMM edge paths get graph-level coverage. Its backbone is bigger than
  // the paper reproductions', so it needs a larger minimum scale.
  auto count_kind = [](const ModelGraph& g, LayerKind k) {
    int n = 0;
    for (const auto& layer : g.layers) n += (layer.kind == k);
    return n;
  };
  ZooSpec spec = SmallSpec(Architecture::kHybNet);
  spec.scale = 0.02;
  auto hybnet = BuildModel(spec);
  ASSERT_TRUE(hybnet.ok()) << hybnet.status().ToString();
  EXPECT_TRUE(hybnet->Validate().ok());
  EXPECT_EQ(hybnet->architecture, "hybnet");
  EXPECT_GE(count_kind(*hybnet, LayerKind::kConv2d), 9);
  EXPECT_GE(count_kind(*hybnet, LayerKind::kDense), 3);  // trunk + sized head
  EXPECT_GT(count_kind(*hybnet, LayerKind::kAdd), 0);    // residual stages
  auto mbnet = BuildModel(SmallSpec(Architecture::kMbNet));
  ASSERT_TRUE(mbnet.ok());
  EXPECT_GT(hybnet->layers.size(), mbnet->layers.size());
  bool off_grid_conv = false;
  for (const auto& layer : hybnet->layers) {
    if (layer.kind == LayerKind::kConv2d && layer.out_channels % 16 != 0) {
      off_grid_conv = true;
    }
  }
  EXPECT_TRUE(off_grid_conv) << "hybnet must exercise ragged panel edges";
}

TEST(ZooTest, RejectsImpossiblySmallTarget) {
  ZooSpec spec = SmallSpec(Architecture::kRsNet);
  spec.scale = 1e-6;
  auto r = BuildModel(spec);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(ZooTest, RejectsBadSpecs) {
  ZooSpec spec = SmallSpec(Architecture::kMbNet);
  spec.scale = 0;
  EXPECT_FALSE(BuildModel(spec).ok());
  spec = SmallSpec(Architecture::kMbNet);
  spec.input_hw = 4;
  EXPECT_FALSE(BuildModel(spec).ok());
  spec = SmallSpec(Architecture::kMbNet);
  spec.classes = 1;
  EXPECT_FALSE(BuildModel(spec).ok());
}

TEST(ZooTest, RandomInputMatchesShape) {
  auto graph = BuildModel(SmallSpec(Architecture::kMbNet));
  ASSERT_TRUE(graph.ok());
  Bytes input = GenerateRandomInput(*graph, 1);
  EXPECT_EQ(input.size(), graph->input_shape.elements() * sizeof(float));
  EXPECT_EQ(GenerateRandomInput(*graph, 1), input);       // deterministic
  EXPECT_NE(GenerateRandomInput(*graph, 2), input);       // seed-sensitive
}

// ---------------------------------------------------------------- Graph validation

TEST(GraphValidationTest, DetectsStructuralErrors) {
  auto graph = BuildModel(SmallSpec(Architecture::kRsNet));
  ASSERT_TRUE(graph.ok());

  ModelGraph broken = *graph;
  broken.layers[2].inputs = {99999};
  EXPECT_FALSE(broken.Validate().ok());

  broken = *graph;
  broken.layers[1].weight_count = broken.weights.size() + 100;
  EXPECT_FALSE(broken.Validate().ok());

  broken = *graph;
  broken.layers.erase(broken.layers.begin());
  EXPECT_FALSE(broken.Validate().ok());
}

TEST(GraphValidationTest, AddShapeMismatchCaught) {
  auto graph = BuildModel(SmallSpec(Architecture::kRsNet));
  ASSERT_TRUE(graph.ok());
  for (auto& layer : graph->layers) {
    if (layer.kind == LayerKind::kAdd) {
      layer.inputs[1] = 0;  // input layer has a different shape
      break;
    }
  }
  EXPECT_FALSE(graph->Validate().ok());
}

// ---------------------------------------------------------------- Format

TEST(FormatTest, SerializeParseRoundTrip) {
  auto graph = BuildModel(SmallSpec(Architecture::kDsNet, "dsnet-0"));
  ASSERT_TRUE(graph.ok());
  Bytes wire = SerializeModel(*graph);
  auto parsed = ParseModel(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->model_id, "dsnet-0");
  EXPECT_EQ(parsed->architecture, "dsnet");
  EXPECT_EQ(parsed->weights, graph->weights);
  EXPECT_EQ(parsed->layers.size(), graph->layers.size());
  for (size_t i = 0; i < parsed->layers.size(); ++i) {
    EXPECT_EQ(parsed->layers[i].kind, graph->layers[i].kind);
    EXPECT_EQ(parsed->layers[i].output_shape, graph->layers[i].output_shape);
  }
}

TEST(FormatTest, CorruptionDetected) {
  auto graph = BuildModel(SmallSpec(Architecture::kMbNet));
  ASSERT_TRUE(graph.ok());
  Bytes wire = SerializeModel(*graph);

  Bytes flipped = wire;
  flipped[wire.size() / 2] ^= 0xff;
  EXPECT_TRUE(ParseModel(flipped).status().IsCorruption());

  Bytes truncated(wire.begin(), wire.begin() + wire.size() / 2);
  EXPECT_FALSE(ParseModel(truncated).ok());

  Bytes bad_magic = wire;
  bad_magic[0] = 'X';
  EXPECT_FALSE(ParseModel(bad_magic).ok());

  EXPECT_FALSE(ParseModel(Bytes{}).ok());
}

TEST(FormatTest, EncryptDecryptRoundTrip) {
  auto graph = BuildModel(SmallSpec(Architecture::kMbNet, "model-7"));
  ASSERT_TRUE(graph.ok());
  Bytes key = crypto::GenerateSymmetricKey();
  auto sealed = EncryptModel(*graph, key);
  ASSERT_TRUE(sealed.ok());
  auto back = DecryptModel(*sealed, key, "model-7");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->weights, graph->weights);
}

TEST(FormatTest, DecryptWithWrongKeyFails) {
  auto graph = BuildModel(SmallSpec(Architecture::kMbNet, "m"));
  ASSERT_TRUE(graph.ok());
  auto sealed = EncryptModel(*graph, crypto::GenerateSymmetricKey());
  ASSERT_TRUE(sealed.ok());
  auto r = DecryptModel(*sealed, crypto::GenerateSymmetricKey(), "m");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnauthenticated());
}

TEST(FormatTest, ModelIdBoundAsAad) {
  // A ciphertext for model A cannot be served as model B, even with the key.
  auto graph = BuildModel(SmallSpec(Architecture::kMbNet, "model-a"));
  ASSERT_TRUE(graph.ok());
  Bytes key = crypto::GenerateSymmetricKey();
  auto sealed = EncryptModel(*graph, key);
  ASSERT_TRUE(sealed.ok());
  EXPECT_FALSE(DecryptModel(*sealed, key, "model-b").ok());
}

TEST(FormatTest, TamperedCiphertextRejected) {
  auto graph = BuildModel(SmallSpec(Architecture::kMbNet, "m"));
  ASSERT_TRUE(graph.ok());
  Bytes key = crypto::GenerateSymmetricKey();
  auto sealed = EncryptModel(*graph, key);
  ASSERT_TRUE(sealed.ok());
  Bytes tampered = *sealed;
  tampered[tampered.size() / 2] ^= 1;
  EXPECT_FALSE(DecryptModel(tampered, key, "m").ok());
}

}  // namespace
}  // namespace sesemi::model
