#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "sgx/attestation.h"
#include "sgx/enclave.h"
#include "sgx/epc.h"
#include "sgx/measurement.h"
#include "sgx/platform.h"

namespace sesemi::sgx {
namespace {

EnclaveImage MakeImage(EnclaveConfig config = {},
                       std::string code = "model inference code v1") {
  return EnclaveImage("test-enclave", {{"main", ToBytes(code)}}, std::move(config));
}

// ---------------------------------------------------------------- Measurement

TEST(MeasurementTest, SameInputsSameMeasurement) {
  EXPECT_EQ(MakeImage().mrenclave(), MakeImage().mrenclave());
}

TEST(MeasurementTest, CodeChangesMeasurement) {
  EXPECT_NE(MakeImage({}, "code A").mrenclave(), MakeImage({}, "code B").mrenclave());
}

TEST(MeasurementTest, ConfigChangesMeasurement) {
  // The paper (§V) bakes execution restrictions into the enclave identity:
  // a sequential-isolation build must not share identity with the default.
  EnclaveConfig sequential;
  sequential.sequential_mode = true;
  EXPECT_NE(MakeImage().mrenclave(), MakeImage(sequential).mrenclave());

  EnclaveConfig more_tcs;
  more_tcs.num_tcs = 8;
  EXPECT_NE(MakeImage().mrenclave(), MakeImage(more_tcs).mrenclave());

  EnclaveConfig fixed;
  fixed.fixed_model_id = "m0";
  EXPECT_NE(MakeImage().mrenclave(), MakeImage(fixed).mrenclave());
}

TEST(MeasurementTest, NameDoesNotChangeMeasurement) {
  EnclaveImage a("name-a", {{"main", ToBytes("c")}}, {});
  EnclaveImage b("name-b", {{"main", ToBytes("c")}}, {});
  EXPECT_EQ(a.mrenclave(), b.mrenclave());
}

TEST(MeasurementTest, CodeUnitOrderIsCanonical) {
  EnclaveImage a("e", {{"u1", ToBytes("x")}, {"u2", ToBytes("y")}}, {});
  EnclaveImage b("e", {{"u2", ToBytes("y")}, {"u1", ToBytes("x")}}, {});
  EXPECT_EQ(a.mrenclave(), b.mrenclave());
}

TEST(MeasurementTest, HexRoundTrip) {
  Measurement m = MakeImage().mrenclave();
  EXPECT_EQ(Measurement::FromHex(m.ToHex()), m);
  EXPECT_FALSE(m.IsZero());
  EXPECT_TRUE(Measurement().IsZero());
  EXPECT_TRUE(Measurement::FromHex("zz").IsZero());
}

// ---------------------------------------------------------------- EPC

TEST(EpcTest, TracksCommittedAndPeak) {
  EpcManager epc(1000);
  ASSERT_TRUE(epc.Commit(600).ok());
  ASSERT_TRUE(epc.Commit(300).ok());
  EXPECT_EQ(epc.committed(), 900u);
  epc.Release(500);
  EXPECT_EQ(epc.committed(), 400u);
  EXPECT_EQ(epc.peak_committed(), 900u);
}

TEST(EpcTest, NonStrictAllowsOversubscription) {
  EpcManager epc(100);
  EXPECT_TRUE(epc.Commit(250).ok());
  EXPECT_DOUBLE_EQ(epc.Utilization(), 2.5);
  EXPECT_GT(epc.PagingSlowdown(), 1.0);
}

TEST(EpcTest, StrictRejectsOversubscription) {
  EpcManager epc(100, /*strict=*/true);
  EXPECT_TRUE(epc.Commit(100).ok());
  auto s = epc.Commit(1);
  EXPECT_TRUE(s.IsResourceExhausted());
}

TEST(EpcTest, NoSlowdownWithinCapacity) {
  EpcManager epc(1 << 20);
  ASSERT_TRUE(epc.Commit(1 << 19).ok());
  EXPECT_DOUBLE_EQ(epc.PagingSlowdown(), 1.0);
}

TEST(EpcTest, SlowdownGrowsWithPressure) {
  EpcManager a(100), b(100);
  ASSERT_TRUE(a.Commit(150).ok());
  ASSERT_TRUE(b.Commit(300).ok());
  EXPECT_LT(a.PagingSlowdown(), b.PagingSlowdown());
}

TEST(EpcTest, ReleaseClampsAtZero) {
  EpcManager epc(100);
  ASSERT_TRUE(epc.Commit(10).ok());
  epc.Release(50);
  EXPECT_EQ(epc.committed(), 0u);
}

// ---------------------------------------------------------------- Platform & enclave

TEST(PlatformTest, GenerationDeterminesDefaults) {
  AttestationAuthority authority;
  SgxPlatform sgx1(SgxGeneration::kSgx1, &authority);
  SgxPlatform sgx2(SgxGeneration::kSgx2, &authority);
  EXPECT_EQ(sgx1.epc().capacity(), kSgx1EpcBytes);
  EXPECT_EQ(sgx2.epc().capacity(), kSgx2EpcBytes);
  EXPECT_EQ(sgx1.attestation_type(), AttestationType::kEpid);
  EXPECT_EQ(sgx2.attestation_type(), AttestationType::kEcdsa);
  EXPECT_NE(sgx1.platform_id(), sgx2.platform_id());
}

TEST(PlatformTest, EnclaveCommitsEpc) {
  AttestationAuthority authority;
  SgxPlatform platform(SgxGeneration::kSgx2, &authority);
  EnclaveConfig config;
  config.heap_size_bytes = 32 << 20;
  config.num_tcs = 4;
  auto enclave = platform.CreateEnclave(MakeImage(config));
  ASSERT_TRUE(enclave.ok());
  EXPECT_GE(platform.epc().committed(), config.heap_size_bytes);
  EXPECT_EQ(platform.enclave_count(), 1);
  uint64_t committed = platform.epc().committed();
  enclave->reset();
  EXPECT_EQ(platform.epc().committed(), committed - (*enclave == nullptr ? committed : 0));
  EXPECT_EQ(platform.enclave_count(), 0);
}

TEST(EnclaveTest, HeapBudgetEnforced) {
  AttestationAuthority authority;
  SgxPlatform platform(SgxGeneration::kSgx2, &authority);
  EnclaveConfig config;
  config.heap_size_bytes = 1000;
  auto enclave = platform.CreateEnclave(MakeImage(config));
  ASSERT_TRUE(enclave.ok());
  EXPECT_TRUE((*enclave)->AllocateTrusted(600).ok());
  EXPECT_TRUE((*enclave)->AllocateTrusted(400).ok());
  EXPECT_TRUE((*enclave)->AllocateTrusted(1).IsResourceExhausted());
  (*enclave)->FreeTrusted(500);
  EXPECT_TRUE((*enclave)->AllocateTrusted(500).ok());
  EXPECT_EQ((*enclave)->heap_peak(), 1000u);
}

TEST(EnclaveTest, TcsPoolBoundsConcurrentEntry) {
  AttestationAuthority authority;
  SgxPlatform platform(SgxGeneration::kSgx2, &authority);
  EnclaveConfig config;
  config.num_tcs = 2;
  auto enclave = platform.CreateEnclave(MakeImage(config));
  ASSERT_TRUE(enclave.ok());

  auto g1 = (*enclave)->TryEnterEcall();
  auto g2 = (*enclave)->TryEnterEcall();
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  auto g3 = (*enclave)->TryEnterEcall();
  EXPECT_TRUE(g3.status().IsResourceExhausted());
  EXPECT_EQ((*enclave)->busy_tcs(), 2);
  {
    TcsGuard released = std::move(*g1);
  }
  EXPECT_EQ((*enclave)->busy_tcs(), 1);
  EXPECT_TRUE((*enclave)->TryEnterEcall().ok());
  EXPECT_EQ((*enclave)->ecall_count(), 3u);  // only successful entries count
}

TEST(EnclaveTest, BlockingEnterEventuallyProceeds) {
  AttestationAuthority authority;
  SgxPlatform platform(SgxGeneration::kSgx2, &authority);
  EnclaveConfig config;
  config.num_tcs = 1;
  auto enclave_or = platform.CreateEnclave(MakeImage(config));
  ASSERT_TRUE(enclave_or.ok());
  Enclave* enclave = enclave_or->get();

  std::atomic<bool> second_entered{false};
  auto guard = std::make_unique<TcsGuard>(enclave->EnterEcall());
  std::thread blocked([&] {
    TcsGuard g = enclave->EnterEcall();
    second_entered = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_entered.load());
  guard.reset();
  blocked.join();
  EXPECT_TRUE(second_entered.load());
}

// ---------------------------------------------------------------- Attestation

TEST(AttestationTest, QuoteRoundTrip) {
  AttestationAuthority authority;
  SgxPlatform platform(SgxGeneration::kSgx2, &authority);
  auto enclave = platform.CreateEnclave(MakeImage());
  ASSERT_TRUE(enclave.ok());

  Bytes data = ToBytes("channel binding");
  AttestationReport report = (*enclave)->CreateReport(data);
  auto quote = platform.GenerateQuote(report);
  ASSERT_TRUE(quote.ok());
  EXPECT_EQ(quote->type, AttestationType::kEcdsa);

  auto verified = authority.VerifyQuote(*quote);
  ASSERT_TRUE(verified.ok());
  EXPECT_EQ(verified->mrenclave, (*enclave)->mrenclave());
  EXPECT_EQ(ToString(verified->generation), std::string("SGX2"));
}

TEST(AttestationTest, Sgx1UsesEpid) {
  AttestationAuthority authority;
  SgxPlatform platform(SgxGeneration::kSgx1, &authority);
  auto enclave = platform.CreateEnclave(MakeImage());
  ASSERT_TRUE(enclave.ok());
  auto quote = platform.GenerateQuote((*enclave)->CreateReport({}));
  ASSERT_TRUE(quote.ok());
  EXPECT_EQ(quote->type, AttestationType::kEpid);
}

TEST(AttestationTest, ForgedReportRejected) {
  AttestationAuthority authority;
  SgxPlatform platform(SgxGeneration::kSgx2, &authority);
  auto enclave = platform.CreateEnclave(MakeImage());
  ASSERT_TRUE(enclave.ok());

  AttestationReport report = (*enclave)->CreateReport(ToBytes("x"));
  report.mrenclave = Measurement::FromHex(std::string(64, 'a'));  // attacker edit
  auto quote = authority.GenerateQuote(report);
  EXPECT_FALSE(quote.ok());
  EXPECT_TRUE(quote.status().IsUnauthenticated() || quote.status().IsNotFound());
}

TEST(AttestationTest, TamperedQuoteSignatureRejected) {
  AttestationAuthority authority;
  SgxPlatform platform(SgxGeneration::kSgx2, &authority);
  auto enclave = platform.CreateEnclave(MakeImage());
  ASSERT_TRUE(enclave.ok());
  auto quote = platform.GenerateQuote((*enclave)->CreateReport({}));
  ASSERT_TRUE(quote.ok());
  Quote tampered = *quote;
  tampered.signature[0] ^= 1;
  EXPECT_FALSE(authority.VerifyQuote(tampered).ok());
}

TEST(AttestationTest, QuoteFromForeignAuthorityRejected) {
  AttestationAuthority intel, rogue;
  SgxPlatform platform(SgxGeneration::kSgx2, &intel);
  auto enclave = platform.CreateEnclave(MakeImage());
  ASSERT_TRUE(enclave.ok());
  auto quote = platform.GenerateQuote((*enclave)->CreateReport({}));
  ASSERT_TRUE(quote.ok());
  // The rogue authority never provisioned this platform.
  EXPECT_FALSE(rogue.VerifyQuote(*quote).ok());
}

TEST(AttestationTest, ReportSerializationRoundTrip) {
  AttestationAuthority authority;
  SgxPlatform platform(SgxGeneration::kSgx1, &authority);
  auto enclave = platform.CreateEnclave(MakeImage());
  ASSERT_TRUE(enclave.ok());
  AttestationReport report = (*enclave)->CreateReport(ToBytes("abc"));
  auto parsed = AttestationReport::Parse(report.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->mrenclave, report.mrenclave);
  EXPECT_EQ(parsed->platform_id, report.platform_id);
  EXPECT_EQ(parsed->report_data, report.report_data);
  EXPECT_EQ(parsed->mac, report.mac);
}

TEST(AttestationTest, QuoteSerializationRoundTrip) {
  AttestationAuthority authority;
  SgxPlatform platform(SgxGeneration::kSgx2, &authority);
  auto enclave = platform.CreateEnclave(MakeImage());
  ASSERT_TRUE(enclave.ok());
  auto quote = platform.GenerateQuote((*enclave)->CreateReport({}));
  ASSERT_TRUE(quote.ok());
  auto parsed = Quote::Parse(quote->Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(authority.VerifyQuote(*parsed).ok());
}

TEST(AttestationTest, LongReportDataIsHashed) {
  AttestationAuthority authority;
  SgxPlatform platform(SgxGeneration::kSgx2, &authority);
  auto enclave = platform.CreateEnclave(MakeImage());
  ASSERT_TRUE(enclave.ok());
  Bytes long_data(100, 0x42);
  AttestationReport r = (*enclave)->CreateReport(long_data);
  // Must still be quotable and verifiable.
  auto quote = platform.GenerateQuote(r);
  ASSERT_TRUE(quote.ok());
  EXPECT_TRUE(authority.VerifyQuote(*quote).ok());
}

TEST(AttestationTest, ParseRejectsGarbage) {
  EXPECT_FALSE(AttestationReport::Parse(Bytes{1, 2, 3}).ok());
  EXPECT_FALSE(Quote::Parse(Bytes{}).ok());
  EXPECT_FALSE(Quote::Parse(Bytes{9, 0, 0, 0, 1, 7}).ok());
}

}  // namespace
}  // namespace sesemi::sgx
