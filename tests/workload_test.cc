#include <gtest/gtest.h>

#include "workload/generators.h"

namespace sesemi::workload {
namespace {

TEST(FixedRateTest, EvenSpacingAndCount) {
  auto trace = FixedRate(10, 5, "m0", "u0");
  EXPECT_EQ(trace.size(), 50u);
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].time - trace[i - 1].time, 100000);  // 100 ms
  }
  EXPECT_EQ(trace[0].model_id, "m0");
  EXPECT_EQ(trace[0].user_id, "u0");
}

TEST(FixedRateTest, ZeroRateIsEmpty) {
  EXPECT_TRUE(FixedRate(0, 10, "m", "u").empty());
}

TEST(FixedRateTest, StartOffsetApplies) {
  auto trace = FixedRate(1, 2, "m", "u", SecondsToMicros(100));
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace[0].time, SecondsToMicros(100));
}

TEST(PoissonTest, RateApproximatelyCorrect) {
  auto trace = Poisson(50, 100, "m", "u", 7);
  // 5000 expected; Poisson sd ~70. Allow 5 sigma.
  EXPECT_NEAR(static_cast<double>(trace.size()), 5000.0, 350.0);
}

TEST(PoissonTest, DeterministicPerSeed) {
  auto a = Poisson(10, 10, "m", "u", 3);
  auto b = Poisson(10, 10, "m", "u", 3);
  auto c = Poisson(10, 10, "m", "u", 4);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].time, b[i].time);
  EXPECT_NE(a.size(), c.size());
}

TEST(PoissonTest, ArrivalsWithinWindowAndOrdered) {
  auto trace = Poisson(20, 10, "m", "u", 5, SecondsToMicros(50));
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].time, SecondsToMicros(50));
    EXPECT_LT(trace[i].time, SecondsToMicros(60));
    if (i > 0) EXPECT_GE(trace[i].time, trace[i - 1].time);
  }
}

TEST(MmppTest, RateAlternatesBetweenStates) {
  MmppSpec spec;
  spec.low_rps = 20;
  spec.high_rps = 40;
  spec.mean_dwell_s = 60;
  spec.duration_s = 900;
  spec.seed = 42;
  auto trace = Mmpp(spec, "m", "u");
  // Overall mean must sit between the two state rates.
  double mean_rps = static_cast<double>(trace.size()) / spec.duration_s;
  EXPECT_GT(mean_rps, 22.0);
  EXPECT_LT(mean_rps, 38.0);

  // Per-second rates should span both regimes.
  auto rates = RatePerSecond(trace, spec.duration_s);
  int low_seconds = 0, high_seconds = 0;
  for (double r : rates) {
    if (r <= 25) ++low_seconds;
    if (r >= 35) ++high_seconds;
  }
  EXPECT_GT(low_seconds, 50);
  EXPECT_GT(high_seconds, 50);
}

TEST(MmppTest, OrderedAndBounded) {
  MmppSpec spec;
  spec.duration_s = 100;
  // Every test pins its own seed: no test depends on the struct default, so
  // reseeding one test (or running under ctest -j) can't perturb another.
  spec.seed = 0xb0b;
  auto trace = Mmpp(spec, "m", "u");
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].time, trace[i - 1].time);
  }
  ASSERT_FALSE(trace.empty());
  EXPECT_LT(trace.back().time, SecondsToMicros(100));
}

TEST(InteractiveSessionTest, SequentialWithThinkTime) {
  auto trace = InteractiveSession(SecondsToMicros(240), {"m0", "m1", "m2"}, "u", 2.0);
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0].time, SecondsToMicros(240));
  EXPECT_EQ(trace[1].time, SecondsToMicros(242));
  EXPECT_EQ(trace[2].time, SecondsToMicros(244));
  EXPECT_EQ(trace[1].model_id, "m1");
}

TEST(MergeTest, ProducesTimeOrderedUnion) {
  auto a = FixedRate(1, 5, "a", "u");              // t = 0,1,2,3,4 s
  auto b = FixedRate(1, 5, "b", "u", 500000);      // t = 0.5,...
  auto merged = Merge({a, b});
  ASSERT_EQ(merged.size(), 10u);
  for (size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LE(merged[i - 1].time, merged[i].time);
  }
  EXPECT_EQ(merged[0].model_id, "a");
  EXPECT_EQ(merged[1].model_id, "b");
}

// The multi-tenant generators drive the cluster replay harness
// (cluster/replay.h): determinism and per-tenant stream independence are
// what make the sim-vs-real differential test reproducible under ctest -j.

TEST(MultiTenantPoissonTest, DeterministicPerSeedAndOrdered) {
  std::vector<TenantSpec> tenants = {{"t0", "u0", 5.0}, {"t1", "u1", 2.0}};
  auto a = MultiTenantPoisson(tenants, 20, 0x51ee7);
  auto b = MultiTenantPoisson(tenants, 20, 0x51ee7);
  auto c = MultiTenantPoisson(tenants, 20, 0x51ee8);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].model_id, b[i].model_id);
    EXPECT_EQ(a[i].user_id, b[i].user_id);
    if (i > 0) EXPECT_GE(a[i].time, a[i - 1].time);
  }
  EXPECT_NE(a.size(), c.size());
}

TEST(MultiTenantPoissonTest, TenantStreamsAreIndependentlySeeded) {
  // Tenant i's stream is seeded from (seed + i): changing another tenant's
  // rate must not move tenant 0's arrivals. This is the property that lets
  // cluster tests add tenants without re-baselining existing assertions.
  std::vector<TenantSpec> one = {{"t0", "u0", 5.0}, {"t1", "u1", 1.0}};
  std::vector<TenantSpec> other = {{"t0", "u0", 5.0}, {"t1", "u1", 9.0}};
  auto extract_t0 = [](const std::vector<Arrival>& trace) {
    std::vector<TimeMicros> times;
    for (const Arrival& a : trace) {
      if (a.model_id == "t0") times.push_back(a.time);
    }
    return times;
  };
  auto a = extract_t0(MultiTenantPoisson(one, 20, 0xfeed));
  auto b = extract_t0(MultiTenantPoisson(other, 20, 0xfeed));
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(ZipfRatesTest, NormalizedAndMonotone) {
  auto rates = ZipfRates(16, 1.0, 100.0);
  ASSERT_EQ(rates.size(), 16u);
  double sum = 0;
  for (size_t i = 0; i < rates.size(); ++i) {
    sum += rates[i];
    if (i > 0) EXPECT_LE(rates[i], rates[i - 1]);
  }
  EXPECT_NEAR(sum, 100.0, 1e-6);
  // alpha = 0 splits evenly.
  auto uniform = ZipfRates(4, 0.0, 8.0);
  for (double r : uniform) EXPECT_NEAR(r, 2.0, 1e-9);
}

TEST(RatePerSecondTest, CountsPerBucket) {
  auto trace = FixedRate(4, 3, "m", "u");
  auto rates = RatePerSecond(trace, 3);
  ASSERT_GE(rates.size(), 3u);
  EXPECT_DOUBLE_EQ(rates[0], 4.0);
  EXPECT_DOUBLE_EQ(rates[1], 4.0);
  EXPECT_DOUBLE_EQ(rates[2], 4.0);
}

}  // namespace
}  // namespace sesemi::workload
