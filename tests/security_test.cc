// Adversarial end-to-end suite: each test plays the §III threat model's
// attacker — a compromised cloud controlling everything outside the enclaves
// — and verifies the corresponding defence (§IV-D security analysis).

#include <gtest/gtest.h>

#include <cmath>

#include "client/clients.h"
#include "crypto/key.h"
#include "keyservice/keyservice.h"
#include "model/format.h"
#include "model/zoo.h"
#include "semirt/semirt.h"
#include "sgx/platform.h"
#include "storage/object_store.h"

namespace sesemi {
namespace {

using client::KeyServiceClient;
using client::ModelOwner;
using client::ModelUser;

class SecurityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    keyservice_ = std::move(*keyservice::StartKeyService(&platform_));
    client_ = std::move(*KeyServiceClient::Connect(
        keyservice_.get(), &authority_,
        keyservice::KeyServiceEnclave::ExpectedMeasurement()));
    owner_ = std::make_unique<ModelOwner>("owner");
    user_ = std::make_unique<ModelUser>("user");
    ASSERT_TRUE(owner_->Register(client_.get()).ok());
    ASSERT_TRUE(user_->Register(client_.get()).ok());

    model::ZooSpec spec;
    spec.model_id = "m0";
    spec.scale = 0.002;
    spec.input_hw = 16;
    graph_ = std::move(*model::BuildModel(spec));
    ASSERT_TRUE(owner_->DeployModel(client_.get(), &storage_, graph_).ok());
  }

  void Authorize(const semirt::SemirtOptions& options) {
    sgx::Measurement es = semirt::SemirtInstance::MeasurementFor(options);
    ASSERT_TRUE(owner_->GrantAccess(client_.get(), "m0", es, user_->id()).ok());
    ASSERT_TRUE(user_->ProvisionRequestKey(client_.get(), "m0", es).ok());
  }

  sgx::AttestationAuthority authority_;
  sgx::SgxPlatform platform_{sgx::SgxGeneration::kSgx2, &authority_};
  std::unique_ptr<keyservice::KeyServiceServer> keyservice_;
  std::unique_ptr<KeyServiceClient> client_;
  std::unique_ptr<ModelOwner> owner_;
  std::unique_ptr<ModelUser> user_;
  storage::InMemoryObjectStore storage_;
  model::ModelGraph graph_;
};

TEST_F(SecurityTest, StoredModelIsCiphertext) {
  // The cloud reads its own storage: the model bytes must leak nothing
  // recognizable — no magic, no weights.
  auto blob = storage_.Get("models/m0");
  ASSERT_TRUE(blob.ok());
  Bytes plain = model::SerializeModel(graph_);
  EXPECT_NE(*blob, plain);
  // The plaintext magic "SSMI" must not appear at the start of the sealed
  // blob (nonce || ciphertext || tag).
  ASSERT_GE(blob->size(), 16u);
  EXPECT_FALSE((*blob)[12] == 'S' && (*blob)[13] == 'S' && (*blob)[14] == 'M');
  // And decryption without the key is impossible.
  EXPECT_FALSE(model::DecryptModel(*blob, Bytes(16, 0), "m0").ok());
}

TEST_F(SecurityTest, CloudCannotSubstituteTheModel) {
  // Attacker swaps the stored ciphertext for one of a *different* model they
  // control, hoping the enclave serves theirs under m0's name.
  semirt::SemirtOptions options;
  Authorize(options);

  model::ZooSpec evil_spec;
  evil_spec.model_id = "m0";  // impersonating m0
  evil_spec.scale = 0.002;
  evil_spec.input_hw = 16;
  evil_spec.seed = 999;
  auto evil = model::BuildModel(evil_spec);
  ASSERT_TRUE(evil.ok());
  Bytes attacker_key = crypto::GenerateSymmetricKey();
  auto sealed = model::EncryptModel(*evil, attacker_key);
  ASSERT_TRUE(sealed.ok());
  ASSERT_TRUE(storage_.Put("models/m0", *sealed).ok());

  auto instance =
      semirt::SemirtInstance::Create(&platform_, options, &storage_, keyservice_.get());
  ASSERT_TRUE(instance.ok());
  auto request = user_->BuildRequest("m0", model::GenerateRandomInput(graph_, 1));
  ASSERT_TRUE(request.ok());
  // The enclave's K_M (the owner's) cannot authenticate the attacker blob.
  auto r = (*instance)->HandleRequest(*request);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnauthenticated());
}

TEST_F(SecurityTest, ResultReplayAcrossRequestsDetected) {
  // The proxy returns request #1's (encrypted) result for request #2. The
  // GCM nonce is random per seal, so ciphertexts differ, but both decrypt
  // under K_R — SeSeMI addresses this at the application layer by the user
  // matching outputs to inputs; here we check the stronger property we do
  // provide: results cannot be replayed across *models*.
  semirt::SemirtOptions options;
  Authorize(options);
  sgx::Measurement es = semirt::SemirtInstance::MeasurementFor(options);
  ASSERT_TRUE(owner_->GrantAccess(client_.get(), "m0", es, user_->id()).ok());

  auto instance =
      semirt::SemirtInstance::Create(&platform_, options, &storage_, keyservice_.get());
  ASSERT_TRUE(instance.ok());
  auto request = user_->BuildRequest("m0", model::GenerateRandomInput(graph_, 1));
  ASSERT_TRUE(request.ok());
  auto sealed = (*instance)->HandleRequest(*request);
  ASSERT_TRUE(sealed.ok());
  // Replaying an m0 result as an "m1" result fails (AAD binds the model id).
  EXPECT_FALSE(semirt::DecryptResultPayload(
                   Bytes(16, 0), "m1", *sealed).ok());
  EXPECT_TRUE(user_->DecryptResult("m0", *sealed).ok());
}

TEST_F(SecurityTest, RevokedStorageRollbackRejected) {
  // Rollback attack: attacker re-uploads an *old* version of the model
  // ciphertext. With per-version keys this fails; with the same key the GCM
  // tag still authenticates, so SeSeMI's defence is key rotation: deploy v2
  // under a fresh key and the old ciphertext stops decrypting.
  semirt::SemirtOptions options;
  Authorize(options);
  auto old_blob = storage_.Get("models/m0");
  ASSERT_TRUE(old_blob.ok());

  // Owner rotates: redeploy m0 (new key K_M').
  ASSERT_TRUE(owner_->DeployModel(client_.get(), &storage_, graph_).ok());
  // Attacker rolls storage back to the old ciphertext.
  ASSERT_TRUE(storage_.Put("models/m0", *old_blob).ok());

  auto instance =
      semirt::SemirtInstance::Create(&platform_, options, &storage_, keyservice_.get());
  ASSERT_TRUE(instance.ok());
  auto request = user_->BuildRequest("m0", model::GenerateRandomInput(graph_, 1));
  ASSERT_TRUE(request.ok());
  auto r = (*instance)->HandleRequest(*request);
  EXPECT_FALSE(r.ok());  // old blob doesn't authenticate under the new K_M
}

TEST_F(SecurityTest, EnclaveWithoutGrantGetsNothingEvenWithValidAttestation) {
  // A perfectly valid SGX enclave with SeMIRT-like code but any deviation
  // (here: different framework) attests fine yet receives no keys.
  semirt::SemirtOptions authorized;
  authorized.framework = inference::FrameworkKind::kTvm;
  Authorize(authorized);

  semirt::SemirtOptions rogue = authorized;
  rogue.framework = inference::FrameworkKind::kTflm;
  auto instance =
      semirt::SemirtInstance::Create(&platform_, rogue, &storage_, keyservice_.get());
  ASSERT_TRUE(instance.ok());
  sgx::Measurement es = semirt::SemirtInstance::MeasurementFor(authorized);
  auto request = user_->BuildRequest("m0", model::GenerateRandomInput(graph_, 1), &es);
  ASSERT_TRUE(request.ok());
  auto r = (*instance)->HandleRequest(*request);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsPermissionDenied());
}

TEST_F(SecurityTest, ScoreRoundingPolicyEnforcedInEnclave) {
  // §IV-D: the output-rounding mitigation is part of the enclave identity.
  semirt::SemirtOptions options;
  options.round_scores_decimals = 2;
  Authorize(options);
  sgx::Measurement es = semirt::SemirtInstance::MeasurementFor(options);

  auto instance =
      semirt::SemirtInstance::Create(&platform_, options, &storage_, keyservice_.get());
  ASSERT_TRUE(instance.ok());
  auto request =
      user_->BuildRequest("m0", model::GenerateRandomInput(graph_, 1), &es);
  ASSERT_TRUE(request.ok());
  auto sealed = (*instance)->HandleRequest(*request);
  ASSERT_TRUE(sealed.ok()) << sealed.status().ToString();
  auto output = user_->DecryptResult("m0", *sealed, &es);
  ASSERT_TRUE(output.ok());
  auto scores = model::ParseOutput(*output);
  ASSERT_TRUE(scores.ok());
  float sum = 0;
  for (float s : *scores) {
    float scaled = s * 100.0f;
    EXPECT_NEAR(scaled, std::round(scaled), 1e-3) << "score not rounded: " << s;
    sum += s;
  }
  EXPECT_NEAR(sum, 1.0f, 0.05f);  // still approximately a distribution

  // The rounding build has a distinct identity from the precise build.
  EXPECT_NE(es, semirt::SemirtInstance::MeasurementFor(semirt::SemirtOptions{}));
}

TEST_F(SecurityTest, RoundingDisabledPreservesExactScores) {
  semirt::SemirtOptions options;  // round_scores_decimals = 0
  Authorize(options);
  auto instance =
      semirt::SemirtInstance::Create(&platform_, options, &storage_, keyservice_.get());
  ASSERT_TRUE(instance.ok());
  auto request = user_->BuildRequest("m0", model::GenerateRandomInput(graph_, 1));
  ASSERT_TRUE(request.ok());
  auto sealed = (*instance)->HandleRequest(*request);
  ASSERT_TRUE(sealed.ok());
  auto scores = model::ParseOutput(*user_->DecryptResult("m0", *sealed));
  ASSERT_TRUE(scores.ok());
  // At least one score should have fractional parts beyond 2 decimals.
  bool precise = false;
  for (float s : *scores) {
    float scaled = s * 100.0f;
    if (std::abs(scaled - std::round(scaled)) > 1e-3) precise = true;
  }
  EXPECT_TRUE(precise);
}

TEST_F(SecurityTest, KeyServiceStateCountsStayConsistent) {
  // An attacker hammering the API with garbage must not corrupt the stores.
  size_t ids = keyservice_->service()->registered_identities();
  size_t models = keyservice_->service()->stored_model_keys();
  for (int i = 0; i < 20; ++i) {
    (void)keyservice_->Handle(1, crypto::RandomBytes(48));
    (void)keyservice_->Handle(9999, crypto::RandomBytes(16));
  }
  EXPECT_EQ(keyservice_->service()->registered_identities(), ids);
  EXPECT_EQ(keyservice_->service()->stored_model_keys(), models);
}

}  // namespace
}  // namespace sesemi
