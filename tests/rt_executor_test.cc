// RT execution-tier tests: lane identity and tier propagation, the
// zero-allocation Submit guarantee (enforced by a global operator-new probe,
// not assumed), multi-producer handoff under contention (the TSan leg runs
// this), ring-full rejection, the bulk-helper clamp transitions, graceful
// degradation when pinning/priority syscalls fail (the normal outcome in an
// unprivileged CI container), and ParallelFor collapsing to inline execution
// on a lane.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <new>
#include <set>
#include <thread>
#include <vector>

#include "common/parallel_for.h"
#include "common/rt_executor.h"

// Allocation probe: counts every global operator new in the test binary so
// Submit's zero-allocation guarantee is measured, not documented.
static std::atomic<uint64_t> g_allocs{0};

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace sesemi {
namespace {

// CI containers usually lack CAP_SYS_NICE; default configs in tests disable
// the privileged knobs so stats assertions don't depend on the environment.
RtExecutorConfig PlainConfig() {
  RtExecutorConfig config;
  config.pin_threads = false;
  config.elevate_priority = false;
  config.clamp_bulk_while_busy = false;
  return config;
}

TEST(RtExecutorTest, ExecutesSubmittedJobs) {
  RtExecutor exec(PlainConfig());
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(exec.Submit(
        [](void* arg) {
          static_cast<std::atomic<int>*>(arg)->fetch_add(1,
                                                         std::memory_order_relaxed);
        },
        &ran));
  }
  while (ran.load(std::memory_order_relaxed) < 100) std::this_thread::yield();
  const RtExecutorStats stats = exec.stats();
  EXPECT_EQ(stats.submitted, 100u);
  EXPECT_GE(stats.executed, 100u);
  EXPECT_EQ(stats.rejected_full, 0u);
}

TEST(RtExecutorTest, JobsRunOnLaneWithRealtimeTier) {
  RtExecutorConfig config = PlainConfig();
  config.num_lanes = 2;
  RtExecutor exec(config);
  EXPECT_EQ(exec.lanes(), 2);
  EXPECT_EQ(exec.tier(), ExecTier::kRealtime);
  EXPECT_FALSE(RtExecutor::OnRtLane());  // the test thread is not a lane
  EXPECT_EQ(RtExecutor::LaneIndex(), -1);
  EXPECT_EQ(CurrentExecTier(), ExecTier::kBulk);

  struct Probe {
    std::atomic<bool> done{false};
    bool on_lane = false;
    int lane = -1;
    ExecTier tier = ExecTier::kBulk;
  } probe;
  ASSERT_TRUE(exec.Submit(
      [](void* arg) {
        auto* p = static_cast<Probe*>(arg);
        p->on_lane = RtExecutor::OnRtLane();
        p->lane = RtExecutor::LaneIndex();
        p->tier = CurrentExecTier();
        p->done.store(true, std::memory_order_release);
      },
      &probe));
  while (!probe.done.load(std::memory_order_acquire)) std::this_thread::yield();
  EXPECT_TRUE(probe.on_lane);
  EXPECT_GE(probe.lane, 0);
  EXPECT_LT(probe.lane, 2);
  EXPECT_EQ(probe.tier, ExecTier::kRealtime);
}

TEST(RtExecutorTest, SubmitPerformsZeroHeapAllocations) {
  RtExecutor exec(PlainConfig());
  std::atomic<int> ran{0};
  const auto fn = [](void* arg) {
    static_cast<std::atomic<int>*>(arg)->fetch_add(1, std::memory_order_relaxed);
  };
  // Warm the path once (first-use laziness elsewhere must not bill Submit).
  ASSERT_TRUE(exec.Submit(fn, &ran));
  while (ran.load(std::memory_order_relaxed) < 1) std::this_thread::yield();

  const uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 64; ++i) ASSERT_TRUE(exec.Submit(fn, &ran));
  const uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "Submit allocated on the handoff path";
  while (ran.load(std::memory_order_relaxed) < 65) std::this_thread::yield();
}

TEST(RtExecutorTest, MultiProducerHandoffDeliversEveryJob) {
  RtExecutorConfig config = PlainConfig();
  config.num_lanes = 2;
  config.queue_capacity = 4096;
  RtExecutor exec(config);

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  std::atomic<int> ran{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&exec, &ran] {
      for (int i = 0; i < kPerProducer; ++i) {
        while (!exec.Submit(
            [](void* arg) {
              static_cast<std::atomic<int>*>(arg)->fetch_add(
                  1, std::memory_order_relaxed);
            },
            &ran)) {
          std::this_thread::yield();  // transient full ring: retry
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  while (ran.load(std::memory_order_relaxed) < kProducers * kPerProducer) {
    std::this_thread::yield();
  }
  EXPECT_EQ(ran.load(std::memory_order_relaxed), kProducers * kPerProducer);
}

TEST(RtExecutorTest, FullRingRejectsInsteadOfBlocking) {
  struct Gate {
    std::mutex mutex;
    std::condition_variable cv;
    bool open = false;
    std::atomic<bool> entered{false};
  } gate;

  RtExecutorConfig config = PlainConfig();
  config.num_lanes = 1;
  config.queue_capacity = 2;  // ring holds exactly 2 queued jobs
  RtExecutor exec(config);

  // Wedge the single lane so nothing drains.
  ASSERT_TRUE(exec.Submit(
      [](void* arg) {
        auto* g = static_cast<Gate*>(arg);
        g->entered.store(true, std::memory_order_release);
        std::unique_lock<std::mutex> lock(g->mutex);
        g->cv.wait(lock, [g] { return g->open; });
      },
      &gate));
  while (!gate.entered.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }

  const auto noop = [](void*) {};
  ASSERT_TRUE(exec.Submit(noop, nullptr));
  ASSERT_TRUE(exec.Submit(noop, nullptr));
  // Ring full (lane busy, 2 slots queued): Submit must refuse, not block.
  EXPECT_FALSE(exec.Submit(noop, nullptr));
  EXPECT_GE(exec.stats().rejected_full, 1u);
  EXPECT_EQ(exec.stats().busy_lanes, 1);

  {
    std::lock_guard<std::mutex> lock(gate.mutex);
    gate.open = true;
  }
  gate.cv.notify_all();
}

TEST(RtExecutorTest, SchedulingFailureDegradesToUnpinnedLanes) {
  RtExecutorConfig config;
  config.pin_threads = true;
  config.elevate_priority = true;
  config.clamp_bulk_while_busy = false;
  config.simulate_sched_failure = true;  // force the EPERM path
  RtExecutor exec(config);

  const RtExecutorStats stats = exec.stats();
  EXPECT_FALSE(stats.pinned);
  EXPECT_FALSE(stats.elevated);

  // Degraded lanes still execute: the tier loses CPU reservations, never work.
  std::atomic<int> ran{0};
  ASSERT_TRUE(exec.Submit(
      [](void* arg) {
        static_cast<std::atomic<int>*>(arg)->fetch_add(1,
                                                       std::memory_order_relaxed);
      },
      &ran));
  while (ran.load(std::memory_order_relaxed) < 1) std::this_thread::yield();
}

TEST(RtExecutorTest, BusyLaneClampsBulkHelpersAndReleasesOnIdle) {
  ASSERT_EQ(BulkHelperLimit(), 0);

  struct Gate {
    std::mutex mutex;
    std::condition_variable cv;
    bool open = false;
    std::atomic<bool> entered{false};
  } gate;

  RtExecutorConfig config = PlainConfig();
  config.clamp_bulk_while_busy = true;
  config.bulk_helpers_while_busy = 2;
  {
    RtExecutor exec(config);
    ASSERT_TRUE(exec.Submit(
        [](void* arg) {
          auto* g = static_cast<Gate*>(arg);
          g->entered.store(true, std::memory_order_release);
          std::unique_lock<std::mutex> lock(g->mutex);
          g->cv.wait(lock, [g] { return g->open; });
        },
        &gate));
    while (!gate.entered.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    // Busy 0 -> 1 installed the clamp.
    EXPECT_EQ(BulkHelperLimit(), 2);
    {
      std::lock_guard<std::mutex> lock(gate.mutex);
      gate.open = true;
    }
    gate.cv.notify_all();
    while (exec.stats().busy_lanes != 0) std::this_thread::yield();
    // Busy 1 -> 0 removed it.
    EXPECT_EQ(BulkHelperLimit(), 0);
  }
}

TEST(RtExecutorTest, ParallelForRunsInlineOnLane) {
  RtExecutor exec(PlainConfig());
  struct Probe {
    std::atomic<bool> done{false};
    std::set<std::thread::id> threads;  // lane-only writes; no lock needed
  } probe;
  ASSERT_TRUE(exec.Submit(
      [](void* arg) {
        auto* p = static_cast<Probe*>(arg);
        // A wide range that the bulk pool would split across workers must
        // stay on the lane: fan-out would hand latency-critical work to the
        // very pool the tier exists to bypass.
        ParallelFor(0, 10000, 1, [p](int64_t, int64_t) {
          p->threads.insert(std::this_thread::get_id());
        });
        p->done.store(true, std::memory_order_release);
      },
      &probe));
  while (!probe.done.load(std::memory_order_acquire)) std::this_thread::yield();
  EXPECT_EQ(probe.threads.size(), 1u);
}

TEST(RtExecutorTest, DestructorDrainsQueuedJobs) {
  std::atomic<int> ran{0};
  constexpr int kJobs = 256;
  {
    RtExecutorConfig config = PlainConfig();
    config.queue_capacity = 512;
    config.spin_iterations = 0;  // force the park path to cover wakeups
    RtExecutor exec(config);
    for (int i = 0; i < kJobs; ++i) {
      ASSERT_TRUE(exec.Submit(
          [](void* arg) {
            static_cast<std::atomic<int>*>(arg)->fetch_add(
                1, std::memory_order_relaxed);
          },
          &ran));
    }
  }
  // Destructor returns only after lanes drained everything queued.
  EXPECT_EQ(ran.load(std::memory_order_relaxed), kJobs);
}

}  // namespace
}  // namespace sesemi
