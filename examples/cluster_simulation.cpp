// Cluster-scale what-if analysis with the discrete-event simulator: size a
// SeSeMI deployment for a bursty diagnosis workload before paying for it.
//
// Sweeps the per-enclave concurrency (TCS count) under the paper's MMPP
// workload and reports the latency/cost trade-off — the Figure 14 experiment
// as a capacity-planning tool.

#include <cstdio>

#include "sim/cluster.h"
#include "workload/generators.h"

using namespace sesemi;

int main() {
  std::printf("== Capacity planning a SeSeMI deployment (simulated) ==\n\n");
  std::printf("workload: MMPP alternating 20<->40 rps for 10 minutes, TVM-DSNET\n");
  std::printf("cluster : 8 SGX2 nodes, 3-minute keep-alive\n\n");

  workload::MmppSpec wl;
  wl.duration_s = 600;
  auto trace = workload::Mmpp(wl, "diagnosis", "clinic");

  std::printf("%-6s %10s %10s %12s %12s %12s\n", "TCS", "avg (s)", "p95 (s)",
              "cold starts", "peak mem GB", "cost GB-s");
  for (int tcs : {1, 2, 4, 8}) {
    sim::SimConfig config;
    config.num_nodes = 8;
    config.cost_model = sim::CostModel::PaperSgx2();
    // Keep total enclave threads per node at the core count (§VI-C).
    uint64_t container_memory = (256ull << 20) + (tcs - 1) * (64ull << 20);
    config.invoker_memory_bytes =
        static_cast<uint64_t>(
            std::max(1, config.cost_model.cores_per_node() / tcs)) *
        container_memory;

    sim::ClusterSim sim(config);
    sim::SimFunction fn;
    fn.name = "diagnose";
    fn.framework = inference::FrameworkKind::kTvm;
    fn.arch = model::Architecture::kDsNet;
    fn.num_tcs = tcs;
    fn.container_memory_bytes = container_memory;
    sim.AddFunction(fn);

    for (const auto& a : trace) {
      sim.Submit("diagnose", a.model_id, a.user_id, a.time);
    }
    sim.Run();

    const sim::Metrics& m = sim.metrics();
    std::printf("%-6d %10.2f %10.2f %12d %12.2f %12.0f\n", tcs,
                m.AvgLatencySeconds(), m.PercentileLatencySeconds(95),
                m.CountKind(semirt::InvocationKind::kCold),
                m.PeakMemoryBytes() / (1ull << 30),
                m.GbSeconds(SecondsToMicros(wl.duration_s)));
  }

  std::printf("\nReading the table: more TCS per enclave shares the in-enclave\n"
              "model buffer across requests, cutting the GB-s bill (the paper\n"
              "reports -59%% for DSNET going 1 -> 4) at a small latency cost\n"
              "once requests start queueing on shared containers.\n");
  return 0;
}
