// Quickstart: the full SeSeMI workflow end to end, in process.
//
//  1. start KeyService (an always-on enclave service) and attest it,
//  2. a model owner registers, encrypts + uploads a model, registers the
//     model key, and authorizes a user for a specific enclave build,
//  3. the user registers and provisions a request key,
//  4. a serverless SeMIRT instance serves the user's encrypted request,
//  5. the user decrypts the prediction.
//
// Everything (SGX enclaves, attestation, crypto, the inference frameworks)
// runs for real inside this process via the functional SGX simulator.

#include <cstdio>

#include "client/clients.h"
#include "keyservice/keyservice.h"
#include "model/zoo.h"
#include "semirt/semirt.h"
#include "sgx/platform.h"
#include "storage/object_store.h"

using namespace sesemi;

#define CHECK_OK(expr)                                             \
  do {                                                             \
    auto&& _status_or = (expr);                                    \
    if (!_status_or.ok()) {                                        \
      std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__,\
                   _status_or.status().ToString().c_str());        \
      return 1;                                                    \
    }                                                              \
  } while (0)

int main() {
  std::printf("== SeSeMI quickstart ==\n\n");

  // --- Cloud infrastructure: an SGX2 platform, storage, KeyService. ---
  sgx::AttestationAuthority authority;  // simulated Intel
  sgx::SgxPlatform platform(sgx::SgxGeneration::kSgx2, &authority);
  storage::InMemoryObjectStore storage;
  auto keyservice_or = keyservice::StartKeyService(&platform);
  CHECK_OK(keyservice_or);
  auto keyservice = std::move(*keyservice_or);
  std::printf("[cloud] KeyService enclave launched, MRENCLAVE %.16s...\n",
              keyservice->service()->enclave()->mrenclave().ToHex().c_str());

  // --- Key setup (paper Figure 3, step 1). ---
  // Both parties attest KeyService against the independently derived E_K.
  auto ks_client_or = client::KeyServiceClient::Connect(
      keyservice.get(), &authority,
      keyservice::KeyServiceEnclave::ExpectedMeasurement());
  CHECK_OK(ks_client_or);
  auto ks_client = std::move(*ks_client_or);
  std::printf("[both ] attested KeyService and opened a secure channel\n");

  client::ModelOwner owner("acme-models");
  client::ModelUser user("alice");
  if (!owner.Register(ks_client.get()).ok() || !user.Register(ks_client.get()).ok()) {
    return 1;
  }
  std::printf("[owner] registered as %.16s...\n", owner.id().c_str());
  std::printf("[user ] registered as %.16s...\n", user.id().c_str());

  // --- Service deployment (step 2): build, encrypt, upload, authorize. ---
  model::ZooSpec spec;
  spec.model_id = "digit-classifier";
  spec.arch = model::Architecture::kMbNet;
  spec.scale = 0.01;  // 1% of MobileNet's 17 MB for a fast demo
  spec.input_hw = 16;
  auto graph_or = model::BuildModel(spec);
  CHECK_OK(graph_or);
  const model::ModelGraph& graph = *graph_or;
  if (!owner.DeployModel(ks_client.get(), &storage, graph).ok()) return 1;
  std::printf("[owner] encrypted + uploaded '%s' (%zu layers, %.2f MB)\n",
              graph.model_id.c_str(), graph.layers.size(),
              graph.WeightBytes() / 1048576.0);

  // The enclave identity the service will run as — derivable by everyone
  // from the published runtime code + configuration.
  semirt::SemirtOptions options;
  options.framework = inference::FrameworkKind::kTvm;
  sgx::Measurement es = semirt::SemirtInstance::MeasurementFor(options);
  if (!owner.GrantAccess(ks_client.get(), spec.model_id, es, user.id()).ok()) return 1;
  if (!user.ProvisionRequestKey(ks_client.get(), spec.model_id, es).ok()) return 1;
  std::printf("[owner] granted alice access via enclave %.16s...\n",
              es.ToHex().c_str());

  // --- Request serving (steps 3-6). ---
  auto instance_or =
      semirt::SemirtInstance::Create(&platform, options, &storage, keyservice.get());
  CHECK_OK(instance_or);
  auto instance = std::move(*instance_or);

  Bytes input = model::GenerateRandomInput(graph, /*seed=*/2024);
  auto request_or = user.BuildRequest(spec.model_id, input);
  CHECK_OK(request_or);

  semirt::StageTimings timings;
  auto sealed_or = instance->HandleRequest(*request_or, &timings);
  CHECK_OK(sealed_or);
  auto output_or = user.DecryptResult(spec.model_id, *sealed_or);
  CHECK_OK(output_or);
  auto scores_or = model::ParseOutput(*output_or);
  CHECK_OK(scores_or);

  int best = 0;
  for (size_t i = 1; i < scores_or->size(); ++i) {
    if ((*scores_or)[i] > (*scores_or)[best]) best = static_cast<int>(i);
  }
  std::printf("[user ] %s invocation served in %.1f ms "
              "(keys %.1f ms, model %.1f ms, runtime %.1f ms, exec %.1f ms)\n",
              ToString(timings.kind), timings.total / 1000.0,
              timings.key_fetch / 1000.0, timings.model_load / 1000.0,
              timings.runtime_init / 1000.0, timings.execute / 1000.0);
  std::printf("[user ] prediction: class %d (p=%.3f)\n", best, (*scores_or)[best]);

  // A second request hits the hot path: cached keys, model, runtime.
  auto sealed2_or = instance->HandleRequest(*request_or, &timings);
  CHECK_OK(sealed2_or);
  std::printf("[user ] repeat request: %s path, %.1f ms\n",
              ToString(timings.kind), timings.total / 1000.0);

  std::printf("\nDone. The model and every request stayed encrypted outside "
              "the enclaves.\n");
  return 0;
}
