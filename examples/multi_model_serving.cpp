// Multi-model serving with FnPacker (paper §IV-C): a model owner operates
// five similar models with infrequent, unpredictable traffic. One endpoint
// per model wastes cold starts; one endpoint for everything thrashes on
// model switches. FnPacker packs idle models onto shared endpoints while
// busy models keep exclusive ones.
//
// Runs the same interactive workload through all three routers on the live
// platform and compares cold starts and per-request latency.

#include <cstdio>

#include "client/clients.h"
#include "fnpacker/router.h"
#include "keyservice/keyservice.h"
#include "model/zoo.h"
#include "serverless/platform.h"
#include "sgx/platform.h"
#include "storage/object_store.h"

using namespace sesemi;

namespace {

struct Deployment {
  sgx::AttestationAuthority authority;
  std::unique_ptr<sgx::SgxPlatform> ks_node;
  storage::InMemoryObjectStore storage;
  std::unique_ptr<keyservice::KeyServiceServer> keyservice;
  std::unique_ptr<client::KeyServiceClient> ks_client;
  std::unique_ptr<client::ModelOwner> owner;
  std::unique_ptr<client::ModelUser> user;
  std::map<std::string, model::ModelGraph> graphs;
  semirt::SemirtOptions runtime_options;

  bool Init() {
    ks_node = std::make_unique<sgx::SgxPlatform>(sgx::SgxGeneration::kSgx2,
                                                 &authority);
    keyservice = std::move(*keyservice::StartKeyService(ks_node.get()));
    ks_client = std::move(*client::KeyServiceClient::Connect(
        keyservice.get(), &authority,
        keyservice::KeyServiceEnclave::ExpectedMeasurement()));
    owner = std::make_unique<client::ModelOwner>("owner");
    user = std::make_unique<client::ModelUser>("analyst");
    if (!owner->Register(ks_client.get()).ok()) return false;
    if (!user->Register(ks_client.get()).ok()) return false;

    sgx::Measurement es =
        semirt::SemirtInstance::MeasurementFor(runtime_options);
    for (int i = 0; i < 5; ++i) {
      model::ZooSpec spec;
      spec.model_id = "m" + std::to_string(i);
      spec.arch = model::Architecture::kMbNet;
      spec.scale = 0.005;
      spec.input_hw = 16;
      spec.seed = 100 + i;
      auto graph = model::BuildModel(spec);
      if (!graph.ok()) return false;
      if (!owner->DeployModel(ks_client.get(), &storage, *graph).ok()) return false;
      if (!owner->GrantAccess(ks_client.get(), spec.model_id, es, user->id()).ok()) {
        return false;
      }
      if (!user->ProvisionRequestKey(ks_client.get(), spec.model_id, es).ok()) {
        return false;
      }
      graphs[spec.model_id] = std::move(*graph);
    }
    return true;
  }
};

struct RunStats {
  int cold_starts = 0;
  double total_ms = 0;
  int requests = 0;
};

/// Replay an interactive session (m0..m4 twice) through `router` on a fresh
/// platform whose endpoints are functions "ep<i>".
RunStats Replay(Deployment& dep, fnpacker::RequestRouter* router) {
  serverless::PlatformConfig config;
  config.num_nodes = 2;
  ManualClock clock;
  serverless::ServerlessPlatform cloud(config, &dep.authority, &dep.storage,
                                       dep.keyservice.get(), &clock);
  for (int i = 0; i < router->num_endpoints(); ++i) {
    serverless::FunctionSpec fn;
    fn.name = "ep" + std::to_string(i);
    fn.options = dep.runtime_options;
    (void)cloud.DeployFunction(fn);
  }

  RunStats stats;
  const std::vector<std::string> session = {"m0", "m1", "m2", "m3", "m4",
                                            "m0", "m1", "m2", "m3", "m4"};
  for (const std::string& model : session) {
    clock.Advance(SecondsToMicros(2));
    auto endpoint = router->Route(model, clock.Now());
    if (!endpoint.ok()) continue;
    Bytes input = model::GenerateRandomInput(dep.graphs[model], 1);
    auto request = dep.user->BuildRequest(model, input);
    if (!request.ok()) continue;
    bool cold = false;
    semirt::StageTimings timings;
    auto sealed = cloud.Invoke("ep" + std::to_string(*endpoint), *request,
                               &timings, &cold);
    router->OnComplete(model, *endpoint, clock.Now());
    if (!sealed.ok()) {
      std::fprintf(stderr, "  %s via ep%d failed: %s\n", model.c_str(), *endpoint,
                   sealed.status().ToString().c_str());
      continue;
    }
    stats.cold_starts += cold;
    stats.total_ms += timings.total / 1000.0;
    stats.requests++;
  }
  return stats;
}

}  // namespace

int main() {
  std::printf("== Multi-model serving: FnPacker vs baselines ==\n\n");
  Deployment dep;
  if (!dep.Init()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }
  std::printf("deployed 5 encrypted models; replaying an interactive session\n"
              "(m0..m4 queried twice, 2 s apart)\n\n");

  std::vector<std::string> models = {"m0", "m1", "m2", "m3", "m4"};

  fnpacker::OneToOneRouter one_to_one(models);
  fnpacker::FnPoolSpec pool;
  pool.models = models;
  pool.num_endpoints = 2;
  fnpacker::FnPackerRouter packer(pool);
  fnpacker::AllInOneRouter all_in_one;

  std::printf("%-12s %12s %12s %14s\n", "Router", "requests", "cold starts",
              "avg ms/request");
  for (auto& [name, router] : std::vector<std::pair<std::string, fnpacker::RequestRouter*>>{
           {"one-to-one", &one_to_one}, {"all-in-one", &all_in_one},
           {"fnpacker", &packer}}) {
    RunStats stats = Replay(dep, router);
    std::printf("%-12s %12d %12d %14.1f\n", name.c_str(), stats.requests,
                stats.cold_starts, stats.total_ms / std::max(1, stats.requests));
  }

  std::printf("\nFnPacker serves five models with two endpoints: one cold start\n"
              "per endpoint instead of one per model, without all-in-one's\n"
              "model-switching on every request.\n");
  return 0;
}
