// The paper's motivating scenario (Figure 1): a hospital deploys a disease-
// prediction model trained on its patients' EHRs. Authorized patients query
// it through SeSeMI; the cloud provider never sees the model or any request,
// and unauthorized users are cryptographically locked out.
//
// Demonstrates:
//  - per-user access control (patient A authorized, patient B not),
//  - the enclave-identity gate (a tampered runtime build gets no keys),
//  - the live serverless platform (cold start, then warm reuse).

#include <cstdio>

#include "client/clients.h"
#include "keyservice/keyservice.h"
#include "model/zoo.h"
#include "serverless/platform.h"
#include "sgx/platform.h"
#include "storage/object_store.h"

using namespace sesemi;

int main() {
  std::printf("== Hospital disease-prediction service on SeSeMI ==\n\n");

  sgx::AttestationAuthority authority;
  sgx::SgxPlatform ks_node(sgx::SgxGeneration::kSgx2, &authority);
  storage::InMemoryObjectStore storage;
  auto keyservice = std::move(*keyservice::StartKeyService(&ks_node));
  auto ks_client = std::move(*client::KeyServiceClient::Connect(
      keyservice.get(), &authority,
      keyservice::KeyServiceEnclave::ExpectedMeasurement()));

  // --- The hospital deploys its model. ---
  client::ModelOwner hospital("st-mary-hospital");
  if (!hospital.Register(ks_client.get()).ok()) return 1;
  model::ZooSpec spec;
  spec.model_id = "diabetes-risk-v2";
  spec.arch = model::Architecture::kDsNet;  // DenseNet-style diagnosis model
  spec.scale = 0.01;
  spec.input_hw = 16;
  auto graph = std::move(*model::BuildModel(spec));
  if (!hospital.DeployModel(ks_client.get(), &storage, graph).ok()) return 1;
  std::printf("[hospital] deployed encrypted model '%s'\n", spec.model_id.c_str());

  // --- Patients. ---
  client::ModelUser alice("patient-alice");
  client::ModelUser bob("patient-bob");  // never granted access
  if (!alice.Register(ks_client.get()).ok() || !bob.Register(ks_client.get()).ok()) {
    return 1;
  }

  semirt::SemirtOptions runtime_options;
  runtime_options.framework = inference::FrameworkKind::kTvm;
  sgx::Measurement es = semirt::SemirtInstance::MeasurementFor(runtime_options);
  if (!hospital.GrantAccess(ks_client.get(), spec.model_id, es, alice.id()).ok()) {
    return 1;
  }
  if (!alice.ProvisionRequestKey(ks_client.get(), spec.model_id, es).ok()) return 1;
  // Bob provisions a request key too — but the hospital never granted him
  // access, so KeyService will refuse to provision his keys to any enclave.
  if (!bob.ProvisionRequestKey(ks_client.get(), spec.model_id, es).ok()) return 1;
  std::printf("[hospital] authorized alice (and only alice) for enclave %.16s...\n\n",
              es.ToHex().c_str());

  // --- The serverless platform (OpenWhisk stand-in). ---
  serverless::PlatformConfig platform_config;
  platform_config.num_nodes = 2;
  serverless::ServerlessPlatform cloud(platform_config, &authority, &storage,
                                       keyservice.get());
  serverless::FunctionSpec fn;
  fn.name = "predict-diabetes";
  fn.options = runtime_options;
  if (!cloud.DeployFunction(fn).ok()) return 1;

  // --- Alice queries her risk. ---
  Bytes ehr_features = model::GenerateRandomInput(graph, /*seed=*/7);
  auto request = alice.BuildRequest(spec.model_id, ehr_features);
  if (!request.ok()) return 1;
  bool cold = false;
  semirt::StageTimings timings;
  auto sealed = cloud.Invoke(fn.name, *request, &timings, &cold);
  if (!sealed.ok()) {
    std::fprintf(stderr, "invoke failed: %s\n", sealed.status().ToString().c_str());
    return 1;
  }
  auto scores = model::ParseOutput(*alice.DecryptResult(spec.model_id, *sealed));
  std::printf("[alice ] %s start, %s path, %.1f ms -> risk score %.3f\n",
              cold ? "cold" : "warm", ToString(timings.kind),
              timings.total / 1000.0, (*scores)[1]);

  auto sealed2 = cloud.Invoke(fn.name, *request, &timings, &cold);
  if (!sealed2.ok()) return 1;
  std::printf("[alice ] repeat: %s start, %s path, %.1f ms "
              "(hot path skips attestation + model load)\n",
              cold ? "cold" : "warm", ToString(timings.kind), timings.total / 1000.0);

  // --- Bob tries the same thing. ---
  auto bob_request = bob.BuildRequest(spec.model_id, ehr_features);
  if (!bob_request.ok()) return 1;
  auto denied = cloud.Invoke(fn.name, *bob_request);
  std::printf("[bob   ] request refused: %s\n", denied.status().ToString().c_str());

  // --- A tampered runtime (different code => different MRENCLAVE). ---
  semirt::SemirtOptions tampered = runtime_options;
  tampered.num_tcs = 2;  // any config/code change shifts the measurement
  serverless::FunctionSpec rogue;
  rogue.name = "predict-diabetes-rogue";
  rogue.options = tampered;
  if (!cloud.DeployFunction(rogue).ok()) return 1;
  auto rogue_result = cloud.Invoke(rogue.name, *request);
  std::printf("[cloud ] rogue enclave build denied keys: %s\n",
              rogue_result.status().ToString().c_str());

  std::printf("\nplatform stats: %d invocations, %d cold starts, %d containers\n",
              cloud.stats().invocations, cloud.stats().cold_starts,
              cloud.ContainerCount());
  return 0;
}
